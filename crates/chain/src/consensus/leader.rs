//! Leader selection.
//!
//! The paper only requires that leadership rotates "periodically"; both a
//! deterministic round-robin and a seeded pseudorandom rotation are
//! provided. Randomized rotation uses ChaCha20 keyed by a public seed, so
//! every miner derives the same schedule — selection must be a pure
//! function of public chain state or a fraudulent miner could grind it.

use fl_crypto::ChaChaPrg;

use crate::tx::AccountId;

/// How the proposer for a view is chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaderSchedule {
    /// `leader(view) = miners[view % n]`.
    RoundRobin {
        /// Participating miner ids.
        miners: Vec<AccountId>,
    },
    /// Pseudorandom rotation from a public seed: every view draws a
    /// uniform miner.
    Seeded {
        /// Participating miner ids.
        miners: Vec<AccountId>,
        /// Public schedule seed (agreed at setup, on-chain).
        seed: [u8; 32],
    },
}

impl LeaderSchedule {
    /// Round-robin schedule.
    ///
    /// # Panics
    ///
    /// Panics if `miners` is empty.
    pub fn round_robin(miners: Vec<AccountId>) -> Self {
        assert!(!miners.is_empty(), "need at least one miner");
        Self::RoundRobin { miners }
    }

    /// Seeded pseudorandom schedule.
    ///
    /// # Panics
    ///
    /// Panics if `miners` is empty.
    pub fn seeded(miners: Vec<AccountId>, seed: [u8; 32]) -> Self {
        assert!(!miners.is_empty(), "need at least one miner");
        Self::Seeded { miners, seed }
    }

    /// The miner set.
    pub fn miners(&self) -> &[AccountId] {
        match self {
            Self::RoundRobin { miners } | Self::Seeded { miners, .. } => miners,
        }
    }

    /// Leader for a view.
    pub fn leader(&self, view: u64) -> AccountId {
        match self {
            Self::RoundRobin { miners } => miners[(view % miners.len() as u64) as usize],
            Self::Seeded { miners, seed } => {
                // Derive one draw per view; nonce carries the view so the
                // schedule is random-access (miners can compute any view
                // without replaying the stream).
                let mut nonce = [0u8; 12];
                nonce[..8].copy_from_slice(&view.to_le_bytes());
                let mut prg = ChaChaPrg::new(seed, &nonce);
                miners[prg.next_u64_below(miners.len() as u64) as usize]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let s = LeaderSchedule::round_robin(vec![10, 20, 30]);
        assert_eq!(s.leader(0), 10);
        assert_eq!(s.leader(1), 20);
        assert_eq!(s.leader(2), 30);
        assert_eq!(s.leader(3), 10);
        assert_eq!(s.leader(300), 10);
    }

    #[test]
    fn seeded_is_deterministic_and_random_access() {
        let s1 = LeaderSchedule::seeded(vec![0, 1, 2, 3], [9u8; 32]);
        let s2 = LeaderSchedule::seeded(vec![0, 1, 2, 3], [9u8; 32]);
        for view in [0u64, 5, 100, 7] {
            assert_eq!(s1.leader(view), s2.leader(view));
        }
    }

    #[test]
    fn seeded_differs_across_seeds() {
        let a = LeaderSchedule::seeded((0..64).collect(), [1u8; 32]);
        let b = LeaderSchedule::seeded((0..64).collect(), [2u8; 32]);
        let sequence_a: Vec<AccountId> = (0..16).map(|v| a.leader(v)).collect();
        let sequence_b: Vec<AccountId> = (0..16).map(|v| b.leader(v)).collect();
        assert_ne!(sequence_a, sequence_b);
    }

    #[test]
    fn seeded_covers_all_miners() {
        let s = LeaderSchedule::seeded(vec![0, 1, 2], [5u8; 32]);
        let mut seen = std::collections::BTreeSet::new();
        for view in 0..100 {
            seen.insert(s.leader(view));
        }
        assert_eq!(seen.len(), 3, "all miners must eventually lead");
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_round_robin_panics() {
        let _ = LeaderSchedule::round_robin(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn empty_seeded_panics() {
        let _ = LeaderSchedule::seeded(vec![], [0u8; 32]);
    }
}
