//! Consensus: leader selection plus verification by re-execution.
//!
//! The paper's protocol has two parts (Sect. III): "1) The leader
//! selection protocol periodically selects a leader to propose a set of
//! transactions. 2) A verification protocol requires all other miners to
//! re-execute the proposed transactions. If the re-execution results are
//! the same as the proposed, the miners accept them; otherwise, they wait
//! for another leader to propose."

pub mod engine;
pub mod leader;

pub use engine::{CommitReport, ConsensusEngine, EngineConfig, EngineError, MinerBehavior};
pub use leader::LeaderSchedule;
