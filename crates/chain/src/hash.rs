//! 32-byte digests over canonical encodings.

use std::fmt;

use fl_crypto::sha256::{sha256, Digest};

use crate::codec::{Decode, DecodeError, Encode, Reader};

/// A 32-byte SHA-256 digest with value semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hash32(pub Digest);

impl Hash32 {
    /// The all-zero digest, used as the genesis parent.
    pub const ZERO: Self = Self([0u8; 32]);

    /// Hashes raw bytes.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        Self(sha256(bytes))
    }

    /// Hashes the canonical encoding of `value` under a domain-separation
    /// tag. Distinct tags guarantee a transaction digest can never collide
    /// with, say, a block digest of the same bytes.
    pub fn of(domain: &str, value: &impl Encode) -> Self {
        let mut buf = Vec::with_capacity(64);
        domain.encode_to(&mut buf);
        value.encode_to(&mut buf);
        Self(sha256(&buf))
    }

    /// Combines two digests (Merkle interior node).
    pub fn combine(left: &Hash32, right: &Hash32) -> Self {
        let mut buf = Vec::with_capacity(65);
        buf.push(0x01); // interior-node tag, defeats second-preimage tricks
        buf.extend_from_slice(&left.0);
        buf.extend_from_slice(&right.0);
        Self(sha256(&buf))
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex string.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// First 8 hex chars, for logs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_owned()
    }
}

impl Encode for Hash32 {
    fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Hash32 {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let bytes = r.take(32)?;
        Ok(Self(bytes.try_into().expect("exact take")))
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash32({}…)", self.short())
    }
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_separation() {
        let v = 42u64;
        assert_ne!(Hash32::of("tx", &v), Hash32::of("block", &v));
    }

    #[test]
    fn deterministic() {
        assert_eq!(Hash32::of("t", &1u64), Hash32::of("t", &1u64));
        assert_ne!(Hash32::of("t", &1u64), Hash32::of("t", &2u64));
    }

    #[test]
    fn combine_order_matters() {
        let a = Hash32::of_bytes(b"a");
        let b = Hash32::of_bytes(b"b");
        assert_ne!(Hash32::combine(&a, &b), Hash32::combine(&b, &a));
    }

    #[test]
    fn hex_round_display() {
        let h = Hash32::of_bytes(b"x");
        assert_eq!(h.to_hex().len(), 64);
        assert_eq!(format!("{h}"), h.to_hex());
        assert_eq!(h.short().len(), 8);
    }

    #[test]
    fn zero_is_all_zeros() {
        assert_eq!(Hash32::ZERO.to_hex(), "0".repeat(64));
    }

    #[test]
    fn encode_is_raw_32_bytes() {
        let h = Hash32::of_bytes(b"y");
        assert_eq!(h.encode(), h.0.to_vec());
    }

    #[test]
    fn decode_roundtrips_and_rejects_short_input() {
        let h = Hash32::of_bytes(b"z");
        assert_eq!(Hash32::decode(&h.encode()), Ok(h));
        assert!(Hash32::decode(&h.encode()[..31]).is_err());
    }
}
