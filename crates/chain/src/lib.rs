//! Blockchain substrate for transparent-fl.
//!
//! The paper (Sect. III) replaces federated learning's semi-trusted server
//! with a blockchain: data owners double as miners, a leader-selection
//! protocol periodically picks a proposer, and a *verification protocol*
//! has every other miner re-execute the proposed transactions, accepting
//! them only when the re-execution matches. This crate builds that whole
//! machine:
//!
//! * [`codec`] — deterministic byte encoding (hashing needs a canonical
//!   serialization).
//! * [`hash`] / [`merkle`] — SHA-256 digests and Merkle commitments over
//!   transaction sets.
//! * [`tx`] / [`block`] / [`store`] — transactions, blocks, and the
//!   append-only validated chain store.
//! * [`contract`] — the smart-contract trait: deterministic state
//!   machines with digestible state, executed identically by every miner.
//! * [`gas`] — execution metering, powering the paper's future-work
//!   throughput analysis (Ext A in DESIGN.md).
//! * [`mempool`] — pending-transaction pool with per-sender nonce order,
//!   batched admission ([`mempool::Mempool::submit_batch`]), and sealed
//!   [`tx::TxBundle`] hand-off to the engine.
//! * [`consensus`] — leader schedule plus the propose → re-execute →
//!   vote → commit engine, including Byzantine miner behaviours. The
//!   commit pipeline executes once per replica on scratch state (fanned
//!   out on `numeric::par`, bit-identical for any thread count) and
//!   applies the proven outcome atomically.
//! * [`net`] — a discrete-event message network with latency models, for
//!   the throughput experiments.
//! * [`log`] / [`durability`] — an append-only segmented record log
//!   (CRC-framed, torn-tail recovering) and the durable chain store on
//!   top of it: periodic state snapshots, crash-point injection, and
//!   verified replay so a chain can be certified from cold bytes on
//!   disk.
//!
//! The engine is deliberately synchronous and deterministic: determinism
//! is not a simplification here but a *requirement* — verification by
//! re-execution only works if every honest miner computes bit-identical
//! results (see `fl-crypto`'s fixed-point ring for the same theme).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod codec;
pub mod consensus;
pub mod contract;
pub mod durability;
pub mod gas;
pub mod hash;
pub mod light;
pub mod log;
pub mod mempool;
pub mod merkle;
pub mod net;
pub mod store;
pub mod tx;

pub use block::{Block, BlockHeader};
pub use consensus::engine::{ConsensusEngine, EngineConfig, MinerBehavior};
pub use contract::{ExecutionOutcome, SmartContract, TxContext};
pub use durability::{CrashPoint, DurabilityError, DurableStore, RecoveryReport};
pub use hash::Hash32;
pub use log::{LogConfig, LogError, SegmentedLog};
pub use mempool::{BatchAdmission, Mempool, MempoolError};
pub use tx::{BundleError, Transaction, TxBundle};
