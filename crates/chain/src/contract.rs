//! The smart-contract abstraction.
//!
//! Paper Sect. III: "Smart contract is a transaction protocol that runs in
//! the blockchain to execute program logic. Indeed, in our setting, Smart
//! contract builds the FL model and evaluates the contribution."
//!
//! A contract here is a *deterministic state machine*:
//!
//! * it consumes calls (`Self::Call`) inside a [`TxContext`];
//! * it produces an [`ExecutionOutcome`] with events and a gas charge;
//! * its entire state can be digested ([`SmartContract::state_digest`]),
//!   which is what verification-by-re-execution compares.
//!
//! Determinism is a contract (pun intended): implementations must not
//! read clocks, OS randomness, thread ids, or iteration order of
//! unordered maps. The test suite in `fedchain` re-executes contracts on
//! independent replicas and asserts digest equality.

use crate::codec::Encode;
use crate::gas::Gas;
use crate::hash::Hash32;
use crate::tx::AccountId;

/// Execution context handed to the contract per transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxContext {
    /// Height of the block being built.
    pub block_height: u64,
    /// Consensus view (leader attempt number).
    pub view: u64,
    /// Authenticated sender of the transaction.
    pub sender: AccountId,
    /// Index of the transaction inside the block.
    pub tx_index: usize,
}

/// Result of executing a single call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecutionOutcome {
    /// Human-auditable events emitted by the call (part of the
    /// transparency story: everything the contract decides is logged).
    pub events: Vec<String>,
    /// Gas consumed by the call.
    pub gas_used: Gas,
}

impl ExecutionOutcome {
    /// Outcome with a single event.
    pub fn event(message: impl Into<String>, gas_used: Gas) -> Self {
        Self {
            events: vec![message.into()],
            gas_used,
        }
    }
}

/// A deterministic on-chain state machine.
pub trait SmartContract {
    /// The call payload type.
    type Call: Encode + Clone;
    /// Contract-specific error type. An erroring call aborts the whole
    /// block proposal (the simulation has no partial-failure semantics —
    /// the FL workflow needs all-or-nothing rounds).
    type Error: std::fmt::Debug;

    /// Executes one call, mutating state.
    fn execute(
        &mut self,
        ctx: &TxContext,
        call: &Self::Call,
    ) -> Result<ExecutionOutcome, Self::Error>;

    /// Digest of the full contract state. Two replicas that processed the
    /// same calls in the same order must return identical digests.
    fn state_digest(&self) -> Hash32;
}

#[cfg(test)]
pub(crate) mod testing {
    //! A tiny counter contract shared by the chain-level tests.

    use super::*;

    /// Calls understood by [`CounterContract`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum CounterCall {
        /// Adds the amount to the counter.
        Add(u64),
        /// Sets the counter to a value.
        Set(u64),
        /// Always fails (for abort-path tests).
        Fail,
    }

    impl Encode for CounterCall {
        fn encode_to(&self, out: &mut Vec<u8>) {
            match self {
                CounterCall::Add(v) => {
                    out.push(0);
                    v.encode_to(out);
                }
                CounterCall::Set(v) => {
                    out.push(1);
                    v.encode_to(out);
                }
                CounterCall::Fail => out.push(2),
            }
        }
    }

    /// Trivial contract: a single integer.
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct CounterContract {
        /// Current value.
        pub value: u64,
    }

    impl SmartContract for CounterContract {
        type Call = CounterCall;
        type Error = String;

        fn execute(
            &mut self,
            _ctx: &TxContext,
            call: &Self::Call,
        ) -> Result<ExecutionOutcome, Self::Error> {
            match call {
                CounterCall::Add(v) => {
                    self.value = self.value.wrapping_add(*v);
                    Ok(ExecutionOutcome::event(format!("add {v}"), Gas(1)))
                }
                CounterCall::Set(v) => {
                    self.value = *v;
                    Ok(ExecutionOutcome::event(format!("set {v}"), Gas(1)))
                }
                CounterCall::Fail => Err("intentional failure".to_owned()),
            }
        }

        fn state_digest(&self) -> Hash32 {
            Hash32::of("counter", &self.value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::{CounterCall, CounterContract};
    use super::*;

    fn ctx() -> TxContext {
        TxContext {
            block_height: 1,
            view: 0,
            sender: 0,
            tx_index: 0,
        }
    }

    #[test]
    fn counter_executes_and_digests() {
        let mut c = CounterContract::default();
        let out = c.execute(&ctx(), &CounterCall::Add(5)).unwrap();
        assert_eq!(out.events, vec!["add 5".to_owned()]);
        assert_eq!(c.value, 5);
    }

    #[test]
    fn replicas_agree_on_digest() {
        let mut a = CounterContract::default();
        let mut b = CounterContract::default();
        for call in [
            CounterCall::Add(3),
            CounterCall::Set(7),
            CounterCall::Add(1),
        ] {
            a.execute(&ctx(), &call).unwrap();
            b.execute(&ctx(), &call).unwrap();
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn divergent_state_divergent_digest() {
        let mut a = CounterContract::default();
        let mut b = CounterContract::default();
        a.execute(&ctx(), &CounterCall::Add(1)).unwrap();
        b.execute(&ctx(), &CounterCall::Add(2)).unwrap();
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn failing_call_leaves_error() {
        let mut c = CounterContract::default();
        assert!(c.execute(&ctx(), &CounterCall::Fail).is_err());
    }
}
