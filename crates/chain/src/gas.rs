//! Execution metering.
//!
//! The paper's future work asks to "pinpoint the potential bottlenecks
//! (such as transaction throughput) of implementing secure federated
//! learning with the blockchain". Gas makes that measurable: contracts
//! charge for the work a call performs (dominated, for the FL contract,
//! by the size of the weight vectors being aggregated), and the bench
//! harness converts per-block gas into tx/s and bytes/s figures.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::codec::Encode;

/// A gas quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Gas(pub u64);

impl Add for Gas {
    type Output = Gas;

    fn add(self, rhs: Gas) -> Gas {
        Gas(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Gas {
    fn add_assign(&mut self, rhs: Gas) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sum for Gas {
    fn sum<I: Iterator<Item = Gas>>(iter: I) -> Gas {
        iter.fold(Gas(0), Add::add)
    }
}

impl fmt::Display for Gas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} gas", self.0)
    }
}

impl Encode for Gas {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.0.encode_to(out);
    }
}

/// Cost schedule, roughly modelled on storage-dominated contracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasSchedule {
    /// Flat cost per call.
    pub base_call: u64,
    /// Cost per 8-byte word written to contract storage.
    pub per_word_store: u64,
    /// Cost per 8-byte word of computation (e.g. aggregation adds).
    pub per_word_compute: u64,
}

impl Default for GasSchedule {
    fn default() -> Self {
        Self {
            base_call: 1_000,
            per_word_store: 20,
            per_word_compute: 1,
        }
    }
}

impl GasSchedule {
    /// Gas for a call that stores `stored_words` and computes over
    /// `compute_words`.
    pub fn charge(&self, stored_words: usize, compute_words: usize) -> Gas {
        let stored = (stored_words as u64).saturating_mul(self.per_word_store);
        let compute = (compute_words as u64).saturating_mul(self.per_word_compute);
        Gas(self
            .base_call
            .saturating_add(stored)
            .saturating_add(compute))
    }
}

/// Accumulates gas during block execution and enforces a block limit.
#[derive(Debug, Clone)]
pub struct GasMeter {
    used: Gas,
    limit: Option<Gas>,
}

/// Raised when a block exceeds its gas limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfGas {
    /// Gas already consumed.
    pub used: Gas,
    /// Gas requested by the failing charge.
    pub requested: Gas,
    /// The limit that was exceeded.
    pub limit: Gas,
}

impl fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of gas: used {}, requested {}, limit {}",
            self.used, self.requested, self.limit
        )
    }
}

impl std::error::Error for OutOfGas {}

impl GasMeter {
    /// Unlimited meter (pure accounting).
    pub fn unlimited() -> Self {
        Self {
            used: Gas(0),
            limit: None,
        }
    }

    /// Meter enforcing a block gas limit.
    pub fn with_limit(limit: Gas) -> Self {
        Self {
            used: Gas(0),
            limit: Some(limit),
        }
    }

    /// Consumed so far.
    pub fn used(&self) -> Gas {
        self.used
    }

    /// Records a charge, failing if it would exceed the limit.
    pub fn charge(&mut self, amount: Gas) -> Result<(), OutOfGas> {
        if let Some(limit) = self.limit {
            if self.used + amount > limit {
                return Err(OutOfGas {
                    used: self.used,
                    requested: amount,
                    limit,
                });
            }
        }
        self.used += amount;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gas_arithmetic_saturates() {
        assert_eq!(Gas(u64::MAX) + Gas(1), Gas(u64::MAX));
        let mut g = Gas(5);
        g += Gas(7);
        assert_eq!(g, Gas(12));
        let total: Gas = [Gas(1), Gas(2), Gas(3)].into_iter().sum();
        assert_eq!(total, Gas(6));
    }

    #[test]
    fn schedule_charges_components() {
        let s = GasSchedule::default();
        let g = s.charge(10, 100);
        assert_eq!(g, Gas(1_000 + 10 * 20 + 100));
    }

    #[test]
    fn unlimited_meter_never_fails() {
        let mut m = GasMeter::unlimited();
        m.charge(Gas(u64::MAX)).unwrap();
        m.charge(Gas(u64::MAX)).unwrap();
        assert_eq!(m.used(), Gas(u64::MAX));
    }

    #[test]
    fn limited_meter_enforces() {
        let mut m = GasMeter::with_limit(Gas(100));
        m.charge(Gas(60)).unwrap();
        let err = m.charge(Gas(50)).unwrap_err();
        assert_eq!(err.used, Gas(60));
        assert_eq!(err.requested, Gas(50));
        assert_eq!(err.limit, Gas(100));
        // Failed charge does not consume.
        assert_eq!(m.used(), Gas(60));
        m.charge(Gas(40)).unwrap();
        assert_eq!(m.used(), Gas(100));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Gas(42).to_string(), "42 gas");
        let err = OutOfGas {
            used: Gas(1),
            requested: Gas(2),
            limit: Gas(3),
        };
        assert!(err.to_string().contains("out of gas"));
    }
}
