//! Append-only validated chain store.
//!
//! Every miner keeps a full copy of the chain. Appending validates the
//! parent link, height continuity, and transaction-root consistency —
//! the structural half of the paper's truthfulness guarantee (the
//! semantic half is verification by re-execution in
//! [`crate::consensus::engine`]).

use std::sync::{Arc, RwLock, RwLockReadGuard};

use crate::block::Block;
use crate::codec::Encode;
use crate::hash::Hash32;

/// Errors from appending to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Parent digest does not match the current tip.
    ParentMismatch {
        /// Expected parent (current tip digest).
        expected: Hash32,
        /// Parent named by the block.
        got: Hash32,
    },
    /// Height is not `tip_height + 1`.
    HeightMismatch {
        /// Expected height.
        expected: u64,
        /// Height named by the block.
        got: u64,
    },
    /// Transaction root does not match the block body.
    TxRootMismatch,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParentMismatch { expected, got } => {
                write!(f, "parent mismatch: expected {expected:?}, got {got:?}")
            }
            Self::HeightMismatch { expected, got } => {
                write!(f, "height mismatch: expected {expected}, got {got}")
            }
            Self::TxRootMismatch => write!(f, "transaction root mismatch"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A thread-safe, append-only block store.
///
/// Cloning shares the underlying chain (all replicas of one *miner* see
/// the same store; different miners hold different stores).
#[derive(Debug, Clone, Default)]
pub struct ChainStore<C> {
    inner: Arc<RwLock<Vec<Block<C>>>>,
}

impl<C: Encode + Clone> ChainStore<C> {
    /// An empty chain.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RwLock::new(Vec::new())),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, Vec<Block<C>>> {
        self.inner.read().expect("chain store lock poisoned")
    }

    /// Number of blocks.
    pub fn height(&self) -> u64 {
        self.read().len() as u64
    }

    /// Digest of the tip header, or [`Hash32::ZERO`] for an empty chain.
    pub fn tip_digest(&self) -> Hash32 {
        self.read()
            .last()
            .map_or(Hash32::ZERO, |b| b.header.digest())
    }

    /// Clone of the block at `height` (0-based), if present.
    pub fn block_at(&self, height: u64) -> Option<Block<C>> {
        self.read().get(height as usize).cloned()
    }

    /// Clone of the tip block.
    pub fn tip(&self) -> Option<Block<C>> {
        self.read().last().cloned()
    }

    /// Validates and appends a block.
    pub fn append(&self, block: Block<C>) -> Result<(), StoreError> {
        let mut chain = self.inner.write().expect("chain store lock poisoned");
        Self::check_structure(&chain, &block)?;
        // Root check last: the O(1) structural checks reject cheaply
        // before the O(n) Merkle rebuild runs.
        if !block.tx_root_consistent() {
            return Err(StoreError::TxRootMismatch);
        }
        chain.push(block);
        Ok(())
    }

    /// Appends a block whose transaction root was already verified at
    /// seal time (assembled with [`Block::from_bundle`] from a sealed
    /// `TxBundle`), skipping the per-append Merkle rebuild. The batched
    /// commit path verifies the root once per block instead of once per
    /// miner replica; debug builds still re-check it. Crate-private so
    /// external callers cannot bypass the root validation of
    /// [`ChainStore::append`].
    pub(crate) fn append_sealed(&self, block: Block<C>) -> Result<(), StoreError> {
        debug_assert!(
            block.tx_root_consistent(),
            "append_sealed requires a pre-verified tx root"
        );
        let mut chain = self.inner.write().expect("chain store lock poisoned");
        Self::check_structure(&chain, &block)?;
        chain.push(block);
        Ok(())
    }

    /// Parent-link and height-continuity checks shared by both appends.
    fn check_structure(chain: &[Block<C>], block: &Block<C>) -> Result<(), StoreError> {
        let expected_parent = chain.last().map_or(Hash32::ZERO, |b| b.header.digest());
        if block.header.parent != expected_parent {
            return Err(StoreError::ParentMismatch {
                expected: expected_parent,
                got: block.header.parent,
            });
        }
        let expected_height = chain.len() as u64;
        if block.header.height != expected_height {
            return Err(StoreError::HeightMismatch {
                expected: expected_height,
                got: block.header.height,
            });
        }
        Ok(())
    }

    /// Verifies the hash chain from genesis to tip.
    pub fn verify_chain(&self) -> bool {
        let chain = self.read();
        let mut parent = Hash32::ZERO;
        for (i, block) in chain.iter().enumerate() {
            if block.header.parent != parent
                || block.header.height != i as u64
                || !block.tx_root_consistent()
            {
                return false;
            }
            parent = block.header.digest();
        }
        true
    }

    /// All state roots in order (the audit trail of contract states).
    pub fn state_roots(&self) -> Vec<Hash32> {
        self.read().iter().map(|b| b.header.state_root).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transaction;

    fn next_block(store: &ChainStore<u64>, calls: &[u64]) -> Block<u64> {
        let txs: Vec<Transaction<u64>> = calls
            .iter()
            .enumerate()
            .map(|(i, &c)| Transaction::new(0, store.height() * 10 + i as u64, c))
            .collect();
        Block::assemble(
            store.height(),
            store.tip_digest(),
            Hash32::of_bytes(b"state"),
            0,
            store.height(),
            txs,
        )
    }

    #[test]
    fn append_and_verify() {
        let store: ChainStore<u64> = ChainStore::new();
        store.append(next_block(&store, &[1, 2])).unwrap();
        store.append(next_block(&store, &[3])).unwrap();
        assert_eq!(store.height(), 2);
        assert!(store.verify_chain());
        assert_eq!(store.block_at(0).unwrap().txs.len(), 2);
        assert!(store.block_at(5).is_none());
    }

    #[test]
    fn wrong_parent_rejected() {
        let store: ChainStore<u64> = ChainStore::new();
        store.append(next_block(&store, &[1])).unwrap();
        let mut bad = next_block(&store, &[2]);
        bad.header.parent = Hash32::of_bytes(b"bogus");
        assert!(matches!(
            store.append(bad),
            Err(StoreError::ParentMismatch { .. })
        ));
    }

    #[test]
    fn append_sealed_keeps_structural_checks() {
        let store: ChainStore<u64> = ChainStore::new();
        store.append_sealed(next_block(&store, &[1])).unwrap();
        let mut bad = next_block(&store, &[2]);
        bad.header.height = 9;
        assert!(matches!(
            store.append_sealed(bad),
            Err(StoreError::HeightMismatch { .. })
        ));
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn wrong_height_rejected() {
        let store: ChainStore<u64> = ChainStore::new();
        let mut bad = next_block(&store, &[1]);
        bad.header.height = 7;
        assert!(matches!(
            store.append(bad),
            Err(StoreError::HeightMismatch { .. })
        ));
    }

    #[test]
    fn tampered_txs_rejected() {
        let store: ChainStore<u64> = ChainStore::new();
        let mut bad = next_block(&store, &[1]);
        bad.txs[0].call = 999;
        assert_eq!(store.append(bad), Err(StoreError::TxRootMismatch));
    }

    #[test]
    fn clones_share_state() {
        let store: ChainStore<u64> = ChainStore::new();
        let alias = store.clone();
        store.append(next_block(&store, &[1])).unwrap();
        assert_eq!(alias.height(), 1);
    }

    #[test]
    fn empty_chain_is_valid() {
        let store: ChainStore<u64> = ChainStore::new();
        assert!(store.verify_chain());
        assert_eq!(store.tip_digest(), Hash32::ZERO);
        assert!(store.tip().is_none());
    }
}
