//! Append-only validated chain store.
//!
//! Every miner keeps a full copy of the chain. Appending validates the
//! parent link, height continuity, and transaction-root consistency —
//! the structural half of the paper's truthfulness guarantee (the
//! semantic half is verification by re-execution in
//! [`crate::consensus::engine`]).

use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::block::Block;
use crate::codec::Encode;
use crate::hash::Hash32;

/// Why (and where) a chain failed full verification.
///
/// [`ChainStore::verify_chain`] reports the *first* divergent block — an
/// auditor or recovering replica gets an actionable location, not a bare
/// `false`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainFault {
    /// Height of the first block that failed verification.
    pub height: u64,
    /// What failed at that height.
    pub kind: ChainFaultKind,
}

/// The specific check a block failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainFaultKind {
    /// The block's parent digest does not match its predecessor's header
    /// digest.
    ParentLink {
        /// Digest of the actual predecessor (or zero at genesis).
        expected: Hash32,
        /// Parent digest the block carries.
        got: Hash32,
    },
    /// The block's recorded height disagrees with its chain position.
    Height {
        /// The block's position in the chain.
        expected: u64,
        /// Height the header carries.
        got: u64,
    },
    /// The header's transaction root does not match the block body.
    TxRoot,
}

impl std::fmt::Display for ChainFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ChainFaultKind::ParentLink { expected, got } => write!(
                f,
                "block {}: parent link {got:?} does not match predecessor {expected:?}",
                self.height
            ),
            ChainFaultKind::Height { expected, got } => write!(
                f,
                "block {}: header height {got} at chain position {expected}",
                self.height
            ),
            ChainFaultKind::TxRoot => {
                write!(f, "block {}: transaction root mismatch", self.height)
            }
        }
    }
}

impl std::error::Error for ChainFault {}

/// Errors from appending to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Parent digest does not match the current tip.
    ParentMismatch {
        /// Expected parent (current tip digest).
        expected: Hash32,
        /// Parent named by the block.
        got: Hash32,
    },
    /// Height is not `tip_height + 1`.
    HeightMismatch {
        /// Expected height.
        expected: u64,
        /// Height named by the block.
        got: u64,
    },
    /// Transaction root does not match the block body.
    TxRootMismatch,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParentMismatch { expected, got } => {
                write!(f, "parent mismatch: expected {expected:?}, got {got:?}")
            }
            Self::HeightMismatch { expected, got } => {
                write!(f, "height mismatch: expected {expected}, got {got}")
            }
            Self::TxRootMismatch => write!(f, "transaction root mismatch"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A thread-safe, append-only block store.
///
/// Cloning shares the underlying chain (all replicas of one *miner* see
/// the same store; different miners hold different stores).
#[derive(Debug, Clone, Default)]
pub struct ChainStore<C> {
    inner: Arc<RwLock<Vec<Block<C>>>>,
}

impl<C: Encode + Clone> ChainStore<C> {
    /// An empty chain.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// Read access with poison recovery: a writer that panicked mid-call
    /// never committed a partial mutation (`append` pushes a fully
    /// validated block or nothing), so the poisoned data is intact and a
    /// long-lived replica's readers must not be wedged by one dead
    /// thread.
    fn read(&self) -> RwLockReadGuard<'_, Vec<Block<C>>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access with the same poison-recovery rationale as `read`.
    fn write(&self) -> RwLockWriteGuard<'_, Vec<Block<C>>> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of blocks.
    pub fn height(&self) -> u64 {
        self.read().len() as u64
    }

    /// Digest of the tip header, or [`Hash32::ZERO`] for an empty chain.
    pub fn tip_digest(&self) -> Hash32 {
        self.read()
            .last()
            .map_or(Hash32::ZERO, |b| b.header.digest())
    }

    /// Clone of the block at `height` (0-based), if present.
    pub fn block_at(&self, height: u64) -> Option<Block<C>> {
        self.read().get(height as usize).cloned()
    }

    /// Clone of the tip block.
    pub fn tip(&self) -> Option<Block<C>> {
        self.read().last().cloned()
    }

    /// Validates and appends a block.
    pub fn append(&self, block: Block<C>) -> Result<(), StoreError> {
        let mut chain = self.write();
        Self::check_structure(&chain, &block)?;
        // Root check last: the O(1) structural checks reject cheaply
        // before the O(n) Merkle rebuild runs.
        if !block.tx_root_consistent() {
            return Err(StoreError::TxRootMismatch);
        }
        chain.push(block);
        Ok(())
    }

    /// Appends a block whose transaction root was already verified at
    /// seal time (assembled with [`Block::from_bundle`] from a sealed
    /// `TxBundle`), skipping the per-append Merkle rebuild. The batched
    /// commit path verifies the root once per block instead of once per
    /// miner replica; debug builds still re-check it. Crate-private so
    /// external callers cannot bypass the root validation of
    /// [`ChainStore::append`].
    pub(crate) fn append_sealed(&self, block: Block<C>) -> Result<(), StoreError> {
        debug_assert!(
            block.tx_root_consistent(),
            "append_sealed requires a pre-verified tx root"
        );
        let mut chain = self.write();
        Self::check_structure(&chain, &block)?;
        chain.push(block);
        Ok(())
    }

    /// Parent-link and height-continuity checks shared by both appends.
    fn check_structure(chain: &[Block<C>], block: &Block<C>) -> Result<(), StoreError> {
        let expected_parent = chain.last().map_or(Hash32::ZERO, |b| b.header.digest());
        if block.header.parent != expected_parent {
            return Err(StoreError::ParentMismatch {
                expected: expected_parent,
                got: block.header.parent,
            });
        }
        let expected_height = chain.len() as u64;
        if block.header.height != expected_height {
            return Err(StoreError::HeightMismatch {
                expected: expected_height,
                got: block.header.height,
            });
        }
        Ok(())
    }

    /// Verifies the hash chain from genesis to tip, reporting the first
    /// divergent block (height and reason) on failure.
    pub fn verify_chain(&self) -> Result<(), ChainFault> {
        let chain = self.read();
        let mut parent = Hash32::ZERO;
        for (i, block) in chain.iter().enumerate() {
            let height = i as u64;
            if block.header.parent != parent {
                return Err(ChainFault {
                    height,
                    kind: ChainFaultKind::ParentLink {
                        expected: parent,
                        got: block.header.parent,
                    },
                });
            }
            if block.header.height != height {
                return Err(ChainFault {
                    height,
                    kind: ChainFaultKind::Height {
                        expected: height,
                        got: block.header.height,
                    },
                });
            }
            if !block.tx_root_consistent() {
                return Err(ChainFault {
                    height,
                    kind: ChainFaultKind::TxRoot,
                });
            }
            parent = block.header.digest();
        }
        Ok(())
    }

    /// All state roots in order (the audit trail of contract states).
    pub fn state_roots(&self) -> Vec<Hash32> {
        self.read().iter().map(|b| b.header.state_root).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::Transaction;

    fn next_block(store: &ChainStore<u64>, calls: &[u64]) -> Block<u64> {
        let txs: Vec<Transaction<u64>> = calls
            .iter()
            .enumerate()
            .map(|(i, &c)| Transaction::new(0, store.height() * 10 + i as u64, c))
            .collect();
        Block::assemble(
            store.height(),
            store.tip_digest(),
            Hash32::of_bytes(b"state"),
            0,
            store.height(),
            txs,
        )
    }

    #[test]
    fn append_and_verify() {
        let store: ChainStore<u64> = ChainStore::new();
        store.append(next_block(&store, &[1, 2])).unwrap();
        store.append(next_block(&store, &[3])).unwrap();
        assert_eq!(store.height(), 2);
        assert_eq!(store.verify_chain(), Ok(()));
        assert_eq!(store.block_at(0).unwrap().txs.len(), 2);
        assert!(store.block_at(5).is_none());
    }

    #[test]
    fn wrong_parent_rejected() {
        let store: ChainStore<u64> = ChainStore::new();
        store.append(next_block(&store, &[1])).unwrap();
        let mut bad = next_block(&store, &[2]);
        bad.header.parent = Hash32::of_bytes(b"bogus");
        assert!(matches!(
            store.append(bad),
            Err(StoreError::ParentMismatch { .. })
        ));
    }

    #[test]
    fn append_sealed_keeps_structural_checks() {
        let store: ChainStore<u64> = ChainStore::new();
        store.append_sealed(next_block(&store, &[1])).unwrap();
        let mut bad = next_block(&store, &[2]);
        bad.header.height = 9;
        assert!(matches!(
            store.append_sealed(bad),
            Err(StoreError::HeightMismatch { .. })
        ));
        assert_eq!(store.height(), 1);
    }

    #[test]
    fn wrong_height_rejected() {
        let store: ChainStore<u64> = ChainStore::new();
        let mut bad = next_block(&store, &[1]);
        bad.header.height = 7;
        assert!(matches!(
            store.append(bad),
            Err(StoreError::HeightMismatch { .. })
        ));
    }

    #[test]
    fn tampered_txs_rejected() {
        let store: ChainStore<u64> = ChainStore::new();
        let mut bad = next_block(&store, &[1]);
        bad.txs[0].call = 999;
        assert_eq!(store.append(bad), Err(StoreError::TxRootMismatch));
    }

    #[test]
    fn clones_share_state() {
        let store: ChainStore<u64> = ChainStore::new();
        let alias = store.clone();
        store.append(next_block(&store, &[1])).unwrap();
        assert_eq!(alias.height(), 1);
    }

    #[test]
    fn empty_chain_is_valid() {
        let store: ChainStore<u64> = ChainStore::new();
        assert_eq!(store.verify_chain(), Ok(()));
        assert_eq!(store.tip_digest(), Hash32::ZERO);
        assert!(store.tip().is_none());
    }

    #[test]
    fn verify_chain_reports_first_divergent_height_and_reason() {
        // Bypass append's validation to plant specific faults.
        let store: ChainStore<u64> = ChainStore::new();
        store.append(next_block(&store, &[1])).unwrap();
        store.append(next_block(&store, &[2])).unwrap();

        // Tamper with block 1's transactions: tx-root fault at height 1.
        {
            let mut chain = store.write();
            chain[1].txs[0].call = 999;
        }
        assert_eq!(
            store.verify_chain(),
            Err(ChainFault {
                height: 1,
                kind: ChainFaultKind::TxRoot
            })
        );

        // Break the parent link instead: reported at the same height with
        // the expected digest named.
        let expected_parent = store.block_at(0).unwrap().header.digest();
        {
            let mut chain = store.write();
            chain[1] = Block::assemble(
                1,
                Hash32::of_bytes(b"bogus"),
                Hash32::of_bytes(b"state"),
                0,
                1,
                vec![Transaction::new(0, 10, 2u64)],
            );
        }
        match store.verify_chain() {
            Err(ChainFault {
                height: 1,
                kind: ChainFaultKind::ParentLink { expected, got },
            }) => {
                assert_eq!(expected, expected_parent);
                assert_eq!(got, Hash32::of_bytes(b"bogus"));
            }
            other => panic!("expected a parent-link fault, got {other:?}"),
        }

        // Height fault: block 1 claims height 9.
        {
            let mut chain = store.write();
            let parent = chain[0].header.digest();
            chain[1] = Block::assemble(
                9,
                parent,
                Hash32::of_bytes(b"state"),
                0,
                1,
                vec![Transaction::new(0, 10, 2u64)],
            );
        }
        assert_eq!(
            store.verify_chain(),
            Err(ChainFault {
                height: 1,
                kind: ChainFaultKind::Height {
                    expected: 1,
                    got: 9
                }
            })
        );
    }

    #[test]
    fn faults_render_with_height_and_reason() {
        let fault = ChainFault {
            height: 3,
            kind: ChainFaultKind::TxRoot,
        };
        assert_eq!(fault.to_string(), "block 3: transaction root mismatch");
        let fault = ChainFault {
            height: 0,
            kind: ChainFaultKind::Height {
                expected: 0,
                got: 7,
            },
        };
        assert!(fault.to_string().contains("height 7"));
    }

    #[test]
    fn poisoned_lock_recovers_for_later_readers() {
        // A thread that panics while holding the write lock poisons it;
        // the store's accessors recover the (intact) data instead of
        // propagating the poison to every later reader on the replica.
        let store: ChainStore<u64> = ChainStore::new();
        store.append(next_block(&store, &[1])).unwrap();
        let poisoner = store.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write();
            panic!("simulated writer crash");
        })
        .join();
        assert_eq!(store.height(), 1, "readers must survive the poison");
        assert_eq!(store.verify_chain(), Ok(()));
        store.append(next_block(&store, &[2])).unwrap();
        assert_eq!(store.height(), 2, "writers must survive the poison");
    }
}
