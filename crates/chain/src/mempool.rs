//! Pending-transaction pool.
//!
//! FIFO within a sender, nonce-gap detection across submissions. Leaders
//! drain the pool when proposing a block; if the proposal is rejected the
//! transactions return to the pool so the next leader can retry — this is
//! exactly the paper's "wait for another leader to propose" behaviour.

use std::collections::{BTreeMap, VecDeque};

use crate::codec::Encode;
use crate::tx::{AccountId, Transaction};

/// Errors from submitting to the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// Nonce is not the next expected for this sender.
    NonceGap {
        /// The sender.
        sender: AccountId,
        /// Nonce the pool expected next.
        expected: u64,
        /// Nonce received.
        got: u64,
    },
    /// The pool is at capacity.
    Full {
        /// Maximum size.
        capacity: usize,
    },
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonceGap {
                sender,
                expected,
                got,
            } => write!(f, "sender {sender}: expected nonce {expected}, got {got}"),
            Self::Full { capacity } => write!(f, "mempool full (capacity {capacity})"),
        }
    }
}

impl std::error::Error for MempoolError {}

/// The pool.
#[derive(Debug, Clone)]
pub struct Mempool<C> {
    queue: VecDeque<Transaction<C>>,
    next_nonce: BTreeMap<AccountId, u64>,
    capacity: usize,
}

impl<C: Encode + Clone> Mempool<C> {
    /// Creates a pool with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Self {
            queue: VecDeque::new(),
            next_nonce: BTreeMap::new(),
            capacity,
        }
    }

    /// Submits a transaction, enforcing contiguous nonces per sender.
    pub fn submit(&mut self, tx: Transaction<C>) -> Result<(), MempoolError> {
        if self.queue.len() >= self.capacity {
            return Err(MempoolError::Full {
                capacity: self.capacity,
            });
        }
        let expected = self.next_nonce.get(&tx.sender).copied().unwrap_or(0);
        if tx.nonce != expected {
            return Err(MempoolError::NonceGap {
                sender: tx.sender,
                expected,
                got: tx.nonce,
            });
        }
        self.next_nonce.insert(tx.sender, expected + 1);
        self.queue.push_back(tx);
        Ok(())
    }

    /// Takes up to `max` transactions for a block proposal.
    pub fn drain(&mut self, max: usize) -> Vec<Transaction<C>> {
        let take = max.min(self.queue.len());
        self.queue.drain(..take).collect()
    }

    /// Returns transactions to the *front* of the pool after a rejected
    /// proposal, preserving their original order.
    pub fn requeue(&mut self, txs: Vec<Transaction<C>>) {
        for tx in txs.into_iter().rev() {
            self.queue.push_front(tx);
        }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Next expected nonce for a sender.
    pub fn expected_nonce(&self, sender: AccountId) -> u64 {
        self.next_nonce.get(&sender).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(sender: AccountId, nonce: u64) -> Transaction<u64> {
        Transaction::new(sender, nonce, nonce * 10)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut pool = Mempool::new(10);
        pool.submit(tx(0, 0)).unwrap();
        pool.submit(tx(1, 0)).unwrap();
        pool.submit(tx(0, 1)).unwrap();
        let drained = pool.drain(10);
        assert_eq!(
            drained
                .iter()
                .map(|t| (t.sender, t.nonce))
                .collect::<Vec<_>>(),
            vec![(0, 0), (1, 0), (0, 1)]
        );
    }

    #[test]
    fn nonce_gap_rejected() {
        let mut pool = Mempool::new(10);
        assert_eq!(
            pool.submit(tx(0, 5)).unwrap_err(),
            MempoolError::NonceGap {
                sender: 0,
                expected: 0,
                got: 5
            }
        );
        pool.submit(tx(0, 0)).unwrap();
        assert!(pool.submit(tx(0, 0)).is_err(), "replay rejected");
        assert_eq!(pool.expected_nonce(0), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut pool = Mempool::new(2);
        pool.submit(tx(0, 0)).unwrap();
        pool.submit(tx(0, 1)).unwrap();
        assert_eq!(
            pool.submit(tx(0, 2)).unwrap_err(),
            MempoolError::Full { capacity: 2 }
        );
    }

    #[test]
    fn drain_respects_max() {
        let mut pool = Mempool::new(10);
        for n in 0..5 {
            pool.submit(tx(0, n)).unwrap();
        }
        assert_eq!(pool.drain(2).len(), 2);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.drain(100).len(), 3);
        assert!(pool.is_empty());
    }

    #[test]
    fn requeue_restores_order() {
        let mut pool = Mempool::new(10);
        for n in 0..4 {
            pool.submit(tx(0, n)).unwrap();
        }
        let taken = pool.drain(2);
        pool.requeue(taken);
        let all = pool.drain(10);
        let nonces: Vec<u64> = all.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: Mempool<u64> = Mempool::new(0);
    }
}
