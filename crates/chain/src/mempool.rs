//! Pending-transaction pool.
//!
//! FIFO within a sender, nonce-gap detection across submissions. Leaders
//! drain the pool when proposing a block; if the proposal is rejected the
//! transactions return to the pool so the next leader can retry — this is
//! exactly the paper's "wait for another leader to propose" behaviour.
//!
//! # Batched admission
//!
//! The hot path is batch-shaped: every federated round submits one
//! transaction per data owner plus an evaluation trigger, all at once.
//! [`Mempool::submit_batch`] admits such a batch in a single pass —
//! capacity is computed once up front and per-sender nonce expectations
//! are validated incrementally — and [`Mempool::drain_bundle`] hands the
//! consensus engine a sealed [`TxBundle`] whose admission checks and
//! Merkle transaction root are already done, so the engine never repeats
//! them per miner replica.
//!
//! # Capacity invariants
//!
//! * [`Mempool::submit`] / [`Mempool::submit_batch`] never grow the pool
//!   past `capacity`.
//! * [`Mempool::requeue`] is **exempt** from the capacity check: the
//!   transactions it restores were already admitted once, and dropping
//!   them after a rejected proposal would silently lose committed nonce
//!   history (the sender could never fill the gap). Requeued transactions
//!   still **count** toward `len()`, so a pool swollen past capacity by a
//!   requeue rejects fresh submissions until a later drain frees space.
//! * [`Mempool::release`] is the inverse of a drain for transactions that
//!   will *never* commit (e.g. the engine reported an execution failure):
//!   it rolls the per-sender nonce counters back so the sender is not
//!   wedged behind a permanent gap, and evicts queued transactions the
//!   rollback orphans.

use std::collections::{BTreeMap, VecDeque};

use crate::codec::Encode;
use crate::tx::{AccountId, Transaction, TxBundle};

/// Errors from submitting to the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MempoolError {
    /// Nonce is not the next expected for this sender.
    NonceGap {
        /// The sender.
        sender: AccountId,
        /// Nonce the pool expected next.
        expected: u64,
        /// Nonce received.
        got: u64,
    },
    /// The pool is at capacity.
    Full {
        /// Maximum size.
        capacity: usize,
    },
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonceGap {
                sender,
                expected,
                got,
            } => write!(f, "sender {sender}: expected nonce {expected}, got {got}"),
            Self::Full { capacity } => write!(f, "mempool full (capacity {capacity})"),
        }
    }
}

impl std::error::Error for MempoolError {}

/// Result of a [`Mempool::submit_batch`] call.
///
/// Admission is per-transaction and greedy: every transaction that fits
/// (capacity-wise and nonce-wise, in batch order) is admitted; the rest
/// come back with the reason, so the caller can retry or drop them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchAdmission<C> {
    /// Transactions admitted to the pool.
    pub admitted: usize,
    /// Transactions turned away, each with its rejection reason, in
    /// batch order.
    pub rejected: Vec<(Transaction<C>, MempoolError)>,
}

impl<C> BatchAdmission<C> {
    /// True when every transaction in the batch was admitted.
    pub fn all_admitted(&self) -> bool {
        self.rejected.is_empty()
    }
}

/// The pool.
#[derive(Debug, Clone)]
pub struct Mempool<C> {
    queue: VecDeque<Transaction<C>>,
    next_nonce: BTreeMap<AccountId, u64>,
    capacity: usize,
}

impl<C: Encode + Clone> Mempool<C> {
    /// Creates a pool with the given capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Self {
            queue: VecDeque::new(),
            next_nonce: BTreeMap::new(),
            capacity,
        }
    }

    /// Submits a transaction, enforcing contiguous nonces per sender.
    pub fn submit(&mut self, tx: Transaction<C>) -> Result<(), MempoolError> {
        if self.queue.len() >= self.capacity {
            return Err(MempoolError::Full {
                capacity: self.capacity,
            });
        }
        let expected = self.next_nonce.get(&tx.sender).copied().unwrap_or(0);
        if tx.nonce != expected {
            return Err(MempoolError::NonceGap {
                sender: tx.sender,
                expected,
                got: tx.nonce,
            });
        }
        self.next_nonce.insert(tx.sender, expected + 1);
        self.queue.push_back(tx);
        Ok(())
    }

    /// Admits a whole batch in one pass: remaining capacity is computed
    /// once, and each sender's nonce expectation is read and written once
    /// per *run* of same-sender transactions (the counter is cached
    /// across the run and flushed to the map only at run boundaries), not
    /// once per transaction.
    ///
    /// Admission is greedy — a rejected transaction does not block later
    /// ones (unless they depend on its nonce). Never grows the pool past
    /// `capacity`.
    pub fn submit_batch(&mut self, txs: Vec<Transaction<C>>) -> BatchAdmission<C> {
        let mut free = self.capacity.saturating_sub(self.queue.len());
        let mut admitted = 0usize;
        let mut rejected = Vec::new();
        // The current run's cached counter; flushed to `next_nonce` when
        // the sender changes and once after the loop.
        let mut run: Option<(AccountId, u64)> = None;
        for tx in txs {
            if free == 0 {
                rejected.push((
                    tx,
                    MempoolError::Full {
                        capacity: self.capacity,
                    },
                ));
                continue;
            }
            let sender = tx.sender;
            let expected = match run {
                Some((s, next)) if s == sender => next,
                _ => {
                    if let Some((s, next)) = run.take() {
                        self.next_nonce.insert(s, next);
                    }
                    self.next_nonce.get(&sender).copied().unwrap_or(0)
                }
            };
            if tx.nonce != expected {
                let got = tx.nonce;
                rejected.push((
                    tx,
                    MempoolError::NonceGap {
                        sender,
                        expected,
                        got,
                    },
                ));
                // The failed tx does not advance the sender's counter.
                run = Some((sender, expected));
                continue;
            }
            run = Some((sender, expected + 1));
            self.queue.push_back(tx);
            free -= 1;
            admitted += 1;
        }
        if let Some((s, next)) = run {
            self.next_nonce.insert(s, next);
        }
        BatchAdmission { admitted, rejected }
    }

    /// Undoes the admissions of the most recent [`Mempool::submit_batch`]
    /// call: pops that batch's `admitted` transactions off the queue tail
    /// and rewinds their senders' nonce counters, returning them. Earlier
    /// queued transactions are untouched (their nonces sit strictly below
    /// every rewind point).
    ///
    /// Must be called before any further submission or drain — the
    /// rollback assumes the queue tail is still exactly the batch.
    pub fn rollback_admitted(&mut self, admitted: usize) -> Vec<Transaction<C>> {
        let start = self.queue.len().saturating_sub(admitted);
        let rolled: Vec<Transaction<C>> = self.queue.split_off(start).into();
        for tx in &rolled {
            if let Some(next) = self.next_nonce.get_mut(&tx.sender) {
                *next = (*next).min(tx.nonce);
            }
        }
        rolled
    }

    /// Takes up to `max` transactions for a block proposal.
    pub fn drain(&mut self, max: usize) -> Vec<Transaction<C>> {
        let take = max.min(self.queue.len());
        self.queue.drain(..take).collect()
    }

    /// Drains up to `max` transactions sealed as a [`TxBundle`]: the
    /// pool's admission checks guarantee per-sender nonce contiguity, so
    /// the bundle is sealed without re-validating, and the engine can
    /// commit it without per-transaction checks.
    pub fn drain_bundle(&mut self, max: usize) -> TxBundle<C> {
        let txs = self.drain(max);
        debug_assert!(
            TxBundle::check_contiguous(&txs).is_ok(),
            "pool invariant: drained txs have contiguous per-sender nonces"
        );
        TxBundle::seal_unchecked(txs)
    }

    /// Drains one sealed [`TxBundle`] per entry of `sizes`, in order —
    /// the streamed multi-bundle round: bundle `i` takes the next
    /// `sizes[i]` queued transactions (fewer if the pool runs dry).
    ///
    /// Each bundle independently satisfies the contiguity invariant
    /// that [`Mempool::drain_bundle`] seals under, because per-sender
    /// nonce order is preserved across consecutive drains.
    pub fn drain_bundles(&mut self, sizes: &[usize]) -> Vec<TxBundle<C>> {
        sizes.iter().map(|&s| self.drain_bundle(s)).collect()
    }

    /// Returns transactions to the *front* of the pool after a rejected
    /// proposal, preserving their original order.
    ///
    /// Deliberately exempt from the capacity check (see the module docs):
    /// these transactions were admitted once and their nonces are already
    /// recorded, so refusing them would wedge their senders. They still
    /// count toward [`Mempool::len`], so an over-full pool keeps
    /// rejecting *fresh* submissions until a drain frees space.
    pub fn requeue(&mut self, txs: Vec<Transaction<C>>) {
        for tx in txs.into_iter().rev() {
            debug_assert!(
                tx.nonce < self.next_nonce.get(&tx.sender).copied().unwrap_or(0),
                "requeue is only for txs this pool admitted before"
            );
            self.queue.push_front(tx);
        }
    }

    /// Rolls back the nonce accounting for drained transactions that
    /// will never commit (e.g. their block kept failing execution and the
    /// driver dropped them).
    ///
    /// Without this, `next_nonce` stays advanced past the dropped
    /// transactions and the sender is permanently wedged: every
    /// resubmission is a [`MempoolError::NonceGap`]. For each affected
    /// sender the counter rewinds to the smallest dropped nonce, and any
    /// *queued* transactions from that sender at or above the rewind
    /// point — now orphaned behind the gap — are evicted and returned so
    /// the caller can account for them.
    pub fn release(&mut self, txs: &[Transaction<C>]) -> Vec<Transaction<C>> {
        let mut rewind: BTreeMap<AccountId, u64> = BTreeMap::new();
        for tx in txs {
            let e = rewind.entry(tx.sender).or_insert(tx.nonce);
            *e = (*e).min(tx.nonce);
        }
        for (&sender, &nonce) in &rewind {
            if let Some(next) = self.next_nonce.get_mut(&sender) {
                *next = (*next).min(nonce);
            }
        }
        let mut evicted = Vec::new();
        self.queue.retain(|tx| {
            let orphaned = rewind.get(&tx.sender).is_some_and(|&n| tx.nonce >= n);
            if orphaned {
                evicted.push(tx.clone());
            }
            !orphaned
        });
        evicted
    }

    /// Admission capacity the pool was created with ([`Mempool::requeue`]
    /// may push `len()` past it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Next expected nonce for a sender.
    pub fn expected_nonce(&self, sender: AccountId) -> u64 {
        self.next_nonce.get(&sender).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(sender: AccountId, nonce: u64) -> Transaction<u64> {
        Transaction::new(sender, nonce, nonce * 10)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut pool = Mempool::new(10);
        pool.submit(tx(0, 0)).unwrap();
        pool.submit(tx(1, 0)).unwrap();
        pool.submit(tx(0, 1)).unwrap();
        let drained = pool.drain(10);
        assert_eq!(
            drained
                .iter()
                .map(|t| (t.sender, t.nonce))
                .collect::<Vec<_>>(),
            vec![(0, 0), (1, 0), (0, 1)]
        );
    }

    #[test]
    fn nonce_gap_rejected() {
        let mut pool = Mempool::new(10);
        assert_eq!(
            pool.submit(tx(0, 5)).unwrap_err(),
            MempoolError::NonceGap {
                sender: 0,
                expected: 0,
                got: 5
            }
        );
        pool.submit(tx(0, 0)).unwrap();
        assert!(pool.submit(tx(0, 0)).is_err(), "replay rejected");
        assert_eq!(pool.expected_nonce(0), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut pool = Mempool::new(2);
        pool.submit(tx(0, 0)).unwrap();
        pool.submit(tx(0, 1)).unwrap();
        assert_eq!(
            pool.submit(tx(0, 2)).unwrap_err(),
            MempoolError::Full { capacity: 2 }
        );
    }

    #[test]
    fn drain_respects_max() {
        let mut pool = Mempool::new(10);
        for n in 0..5 {
            pool.submit(tx(0, n)).unwrap();
        }
        assert_eq!(pool.drain(2).len(), 2);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.drain(100).len(), 3);
        assert!(pool.is_empty());
    }

    #[test]
    fn drain_bundles_streams_sized_bundles_in_order() {
        let mut pool = Mempool::new(16);
        for n in 0..3 {
            pool.submit(tx(0, n)).unwrap();
        }
        for n in 0..3 {
            pool.submit(tx(1, n)).unwrap();
        }
        let bundles = pool.drain_bundles(&[2, 3, 4]);
        assert_eq!(bundles.len(), 3);
        assert_eq!(bundles[0].txs().len(), 2);
        assert_eq!(bundles[1].txs().len(), 3);
        assert_eq!(bundles[2].txs().len(), 1, "pool ran dry");
        assert!(pool.is_empty());
        // Per-sender nonce order is preserved across the stream.
        let mut last: std::collections::BTreeMap<AccountId, u64> = Default::default();
        for b in &bundles {
            for t in b.txs() {
                if let Some(prev) = last.insert(t.sender, t.nonce) {
                    assert_eq!(t.nonce, prev + 1, "sender {} out of order", t.sender);
                }
            }
        }
    }

    #[test]
    fn requeue_restores_order() {
        let mut pool = Mempool::new(10);
        for n in 0..4 {
            pool.submit(tx(0, n)).unwrap();
        }
        let taken = pool.drain(2);
        pool.requeue(taken);
        let all = pool.drain(10);
        let nonces: Vec<u64> = all.iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: Mempool<u64> = Mempool::new(0);
    }

    #[test]
    fn submit_batch_matches_sequential_submits() {
        let batch: Vec<Transaction<u64>> = vec![
            tx(0, 0),
            tx(1, 0),
            tx(0, 1),
            tx(1, 2), // gap: expected 1
            tx(0, 2),
            tx(1, 1),
        ];
        let mut sequential = Mempool::new(10);
        let mut seq_rejected = Vec::new();
        for t in batch.clone() {
            if let Err(e) = sequential.submit(t.clone()) {
                seq_rejected.push((t, e));
            }
        }
        let mut batched = Mempool::new(10);
        let admission = batched.submit_batch(batch);
        assert_eq!(admission.admitted, 5);
        assert_eq!(admission.rejected, seq_rejected);
        assert!(!admission.all_admitted());
        assert_eq!(batched.drain(10), sequential.drain(10));
        assert_eq!(batched.expected_nonce(0), 3);
        assert_eq!(batched.expected_nonce(1), 2);
    }

    #[test]
    fn submit_batch_checks_capacity_once_and_never_overfills() {
        let mut pool = Mempool::new(3);
        pool.submit(tx(9, 0)).unwrap();
        let admission = pool.submit_batch((0..5).map(|n| tx(0, n)).collect());
        assert_eq!(admission.admitted, 2, "only the free slots are filled");
        assert_eq!(pool.len(), 3);
        assert!(admission
            .rejected
            .iter()
            .all(|(_, e)| matches!(e, MempoolError::Full { capacity: 3 })));
        // The rejected txs did not advance the nonce counter: they can be
        // resubmitted once space frees up.
        pool.drain(3);
        let retry = pool.submit_batch(admission.rejected.into_iter().map(|(t, _)| t).collect());
        assert!(retry.all_admitted());
    }

    #[test]
    fn drain_bundle_seals_pool_order() {
        let mut pool = Mempool::new(10);
        pool.submit(tx(0, 0)).unwrap();
        pool.submit(tx(1, 0)).unwrap();
        pool.submit(tx(0, 1)).unwrap();
        let bundle = pool.drain_bundle(2);
        assert_eq!(bundle.len(), 2);
        assert_eq!(
            bundle.tx_root(),
            crate::block::Block::tx_root_of(bundle.txs())
        );
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn requeue_exempt_from_capacity_but_counted() {
        let mut pool = Mempool::new(2);
        pool.submit(tx(0, 0)).unwrap();
        pool.submit(tx(0, 1)).unwrap();
        let proposal = pool.drain(2);
        // New txs race in while the proposal is out for votes.
        pool.submit(tx(0, 2)).unwrap();
        pool.submit(tx(0, 3)).unwrap();
        // The proposal is rejected: requeue must take the txs back even
        // though the pool is already at capacity...
        pool.requeue(proposal);
        assert_eq!(pool.len(), 4, "requeued txs are exempt from capacity");
        // ...and the swollen pool counts them, rejecting fresh traffic.
        assert_eq!(
            pool.submit(tx(0, 4)).unwrap_err(),
            MempoolError::Full { capacity: 2 }
        );
        // Order is preserved across the round trip.
        let nonces: Vec<u64> = pool.drain(10).iter().map(|t| t.nonce).collect();
        assert_eq!(nonces, vec![0, 1, 2, 3]);
        // Back under capacity: fresh submissions flow again.
        pool.submit(tx(0, 4)).unwrap();
    }

    #[test]
    fn rollback_admitted_restores_pre_batch_state() {
        let mut pool = Mempool::new(4);
        pool.submit(tx(0, 0)).unwrap(); // pre-batch, must survive
        let admission = pool.submit_batch(vec![tx(0, 1), tx(1, 0), tx(1, 1), tx(1, 2)]);
        assert_eq!(admission.admitted, 3, "capacity 4: 1 pre-batch + 3");
        assert!(!admission.all_admitted());

        let rolled = pool.rollback_admitted(admission.admitted);
        assert_eq!(rolled.len(), 3);
        assert_eq!(pool.len(), 1, "pre-batch tx untouched");
        assert_eq!(pool.expected_nonce(0), 1, "rewound to pre-batch value");
        assert_eq!(pool.expected_nonce(1), 0, "rewound to zero");

        // Once space frees up, the rolled-back batch resubmits cleanly.
        pool.drain(1);
        assert!(pool.submit_batch(rolled).all_admitted());
    }

    #[test]
    fn release_unwedges_sender_after_dropped_drain() {
        let mut pool = Mempool::new(10);
        for n in 0..3 {
            pool.submit(tx(0, n)).unwrap();
        }
        pool.submit(tx(1, 0)).unwrap();
        let drained = pool.drain(2); // takes sender 0's nonces 0 and 1
        assert_eq!(pool.expected_nonce(0), 3);

        // Execution failed; without release the sender is wedged.
        assert!(matches!(
            pool.submit(tx(0, 0)).unwrap_err(),
            MempoolError::NonceGap { expected: 3, .. }
        ));

        let evicted = pool.release(&drained);
        // Queued nonce 2 is orphaned by the rollback and evicted.
        assert_eq!(evicted.iter().map(|t| t.nonce).collect::<Vec<_>>(), vec![2]);
        assert_eq!(pool.expected_nonce(0), 0, "counter rewound");
        assert_eq!(pool.expected_nonce(1), 1, "other senders untouched");
        assert_eq!(pool.len(), 1, "sender 1's tx survives");

        // The sender resubmits from the rewind point.
        for n in 0..3 {
            pool.submit(tx(0, n)).unwrap();
        }
        assert_eq!(pool.len(), 4);
    }
}
