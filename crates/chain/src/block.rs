//! Blocks: a header committing to parent, transactions, and post-state.
//!
//! The `state_root` is the pivot of the paper's verification protocol: a
//! proposer publishes the digest of the contract state *after* executing
//! the block's transactions, and verifiers accept only if their own
//! re-execution lands on the same digest.

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::hash::Hash32;
use crate::merkle::MerkleTree;
use crate::tx::{AccountId, Transaction};

/// Immutable block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height in the chain; genesis is 0.
    pub height: u64,
    /// Digest of the parent block header.
    pub parent: Hash32,
    /// Merkle root of the transaction digests.
    pub tx_root: Hash32,
    /// Digest of the contract state after executing this block.
    pub state_root: Hash32,
    /// The miner that proposed the block.
    pub proposer: AccountId,
    /// Consensus view number in which the block was accepted (counts
    /// failed leaders, so `view >= height` when leaders were skipped).
    pub view: u64,
}

impl Encode for BlockHeader {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.height.encode_to(out);
        self.parent.encode_to(out);
        self.tx_root.encode_to(out);
        self.state_root.encode_to(out);
        self.proposer.encode_to(out);
        self.view.encode_to(out);
    }
}

impl Decode for BlockHeader {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            height: u64::decode_from(r)?,
            parent: Hash32::decode_from(r)?,
            tx_root: Hash32::decode_from(r)?,
            state_root: Hash32::decode_from(r)?,
            proposer: AccountId::decode_from(r)?,
            view: u64::decode_from(r)?,
        })
    }
}

impl BlockHeader {
    /// Canonical digest of the header ("the block hash").
    pub fn digest(&self) -> Hash32 {
        Hash32::of("transparent-fl/block", self)
    }
}

/// A block: header plus the full transaction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block<C> {
    /// The header.
    pub header: BlockHeader,
    /// Transactions in execution order.
    pub txs: Vec<Transaction<C>>,
}

impl<C: Encode> Encode for Block<C> {
    fn encode_to(&self, out: &mut Vec<u8>) {
        self.header.encode_to(out);
        self.txs.encode_to(out);
    }
}

impl<C: Decode> Decode for Block<C> {
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Self {
            header: BlockHeader::decode_from(r)?,
            txs: Vec::decode_from(r)?,
        })
    }
}

impl<C: Encode> Block<C> {
    /// Assembles a block, computing the transaction Merkle root.
    pub fn assemble(
        height: u64,
        parent: Hash32,
        state_root: Hash32,
        proposer: AccountId,
        view: u64,
        txs: Vec<Transaction<C>>,
    ) -> Self {
        let tx_root = Self::tx_root_of(&txs);
        Self {
            header: BlockHeader {
                height,
                parent,
                tx_root,
                state_root,
                proposer,
                view,
            },
            txs,
        }
    }

    /// Merkle root over a transaction list.
    pub fn tx_root_of(txs: &[Transaction<C>]) -> Hash32 {
        let leaves: Vec<Hash32> = txs.iter().map(Transaction::digest).collect();
        MerkleTree::build(&leaves).root()
    }

    /// Validates internal consistency (tx root matches the body).
    pub fn tx_root_consistent(&self) -> bool {
        Self::tx_root_of(&self.txs) == self.header.tx_root
    }
}

impl<C: Encode + Clone> Block<C> {
    /// Assembles a block from a sealed [`crate::tx::TxBundle`], reusing the Merkle
    /// root computed at seal time instead of rebuilding the tree — the
    /// batched commit path assembles each block exactly once this way.
    pub fn from_bundle(
        height: u64,
        parent: Hash32,
        state_root: Hash32,
        proposer: AccountId,
        view: u64,
        bundle: &crate::tx::TxBundle<C>,
    ) -> Self {
        let block = Self {
            header: BlockHeader {
                height,
                parent,
                tx_root: bundle.tx_root(),
                state_root,
                proposer,
                view,
            },
            txs: bundle.txs().to_vec(),
        };
        debug_assert!(block.tx_root_consistent(), "bundle root out of sync");
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block<u64> {
        Block::assemble(
            1,
            Hash32::of_bytes(b"parent"),
            Hash32::of_bytes(b"state"),
            3,
            1,
            vec![Transaction::new(0, 0, 10u64), Transaction::new(1, 0, 20u64)],
        )
    }

    #[test]
    fn assemble_sets_consistent_root() {
        assert!(sample_block().tx_root_consistent());
    }

    #[test]
    fn tampered_body_breaks_root() {
        let mut b = sample_block();
        b.txs[0].call = 99;
        assert!(!b.tx_root_consistent());
    }

    #[test]
    fn header_digest_covers_state_root() {
        let a = sample_block();
        let mut b = sample_block();
        b.header.state_root = Hash32::of_bytes(b"forged state");
        assert_ne!(a.header.digest(), b.header.digest());
    }

    #[test]
    fn header_digest_covers_proposer_and_view() {
        let a = sample_block();
        let mut b = sample_block();
        b.header.proposer = 9;
        assert_ne!(a.header.digest(), b.header.digest());
        let mut c = sample_block();
        c.header.view = 42;
        assert_ne!(a.header.digest(), c.header.digest());
    }

    #[test]
    fn from_bundle_equals_assemble() {
        let txs = vec![Transaction::new(0, 0, 10u64), Transaction::new(1, 0, 20u64)];
        let bundle = crate::tx::TxBundle::seal(txs.clone()).unwrap();
        let via_bundle = Block::from_bundle(
            1,
            Hash32::of_bytes(b"parent"),
            Hash32::of_bytes(b"state"),
            3,
            1,
            &bundle,
        );
        assert_eq!(via_bundle, sample_block());
        assert!(via_bundle.tx_root_consistent());
    }

    #[test]
    fn block_decode_roundtrips_and_rejects_corruption() {
        let b = sample_block();
        let enc = b.encode();
        assert_eq!(Block::<u64>::decode(&enc), Ok(b.clone()));
        // Header alone also round-trips.
        assert_eq!(BlockHeader::decode(&b.header.encode()), Ok(b.header));
        // Truncation anywhere is a rejection.
        for cut in [0, 1, enc.len() / 2, enc.len() - 1] {
            assert!(Block::<u64>::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is a rejection.
        let mut padded = enc;
        padded.push(0);
        assert!(Block::<u64>::decode(&padded).is_err());
    }

    #[test]
    fn empty_block_zero_tx_root() {
        let b: Block<u64> = Block::assemble(0, Hash32::ZERO, Hash32::ZERO, 0, 0, vec![]);
        assert_eq!(b.header.tx_root, Hash32::ZERO);
        assert!(b.tx_root_consistent());
    }
}
