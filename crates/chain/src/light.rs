//! Light-client (SPV-style) verification.
//!
//! A data owner auditing its own treatment should not need to store the
//! full chain. A [`HeaderChain`] keeps only block headers (a few hundred
//! bytes each), validates their hash linkage, and can verify — given a
//! Merkle proof produced by any full node — that a specific transaction
//! was committed at a given height. Combined with the state roots in the
//! headers, this gives the paper's transparency guarantee to clients that
//! hold ~0.01% of the chain's bytes.

use crate::block::BlockHeader;
use crate::hash::Hash32;
use crate::merkle::MerkleProof;

/// Errors from header-chain maintenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LightClientError {
    /// The appended header does not link to the current tip.
    ParentMismatch {
        /// Digest the client expected (its tip).
        expected: Hash32,
        /// Parent digest the header carries.
        got: Hash32,
    },
    /// The appended header skips or repeats a height.
    HeightMismatch {
        /// Height the client expected.
        expected: u64,
        /// Height the header carries.
        got: u64,
    },
}

impl std::fmt::Display for LightClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ParentMismatch { expected, got } => {
                write!(f, "header parent {got:?} does not link to tip {expected:?}")
            }
            Self::HeightMismatch { expected, got } => {
                write!(f, "header height {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LightClientError {}

/// A headers-only view of the chain.
#[derive(Debug, Clone, Default)]
pub struct HeaderChain {
    headers: Vec<BlockHeader>,
}

impl HeaderChain {
    /// An empty client (genesis parent is [`Hash32::ZERO`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accepted headers.
    pub fn height(&self) -> u64 {
        self.headers.len() as u64
    }

    /// Digest of the current tip header.
    pub fn tip_digest(&self) -> Hash32 {
        self.headers
            .last()
            .map_or(Hash32::ZERO, BlockHeader::digest)
    }

    /// Header at `height`, if synced that far.
    pub fn header_at(&self, height: u64) -> Option<&BlockHeader> {
        self.headers.get(height as usize)
    }

    /// Accepts the next header after validating linkage.
    pub fn accept(&mut self, header: BlockHeader) -> Result<(), LightClientError> {
        let expected_parent = self.tip_digest();
        if header.parent != expected_parent {
            return Err(LightClientError::ParentMismatch {
                expected: expected_parent,
                got: header.parent,
            });
        }
        let expected_height = self.height();
        if header.height != expected_height {
            return Err(LightClientError::HeightMismatch {
                expected: expected_height,
                got: header.height,
            });
        }
        self.headers.push(header);
        Ok(())
    }

    /// Verifies that a transaction with digest `tx_digest` was included
    /// in the block at `height`, using a full node's Merkle `proof`.
    pub fn verify_inclusion(&self, height: u64, tx_digest: &Hash32, proof: &MerkleProof) -> bool {
        let Some(header) = self.header_at(height) else {
            return false;
        };
        proof.verify(tx_digest, &header.tx_root)
    }

    /// The audit trail of state roots, as visible to this light client.
    pub fn state_roots(&self) -> Vec<Hash32> {
        self.headers.iter().map(|h| h.state_root).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::merkle::MerkleTree;
    use crate::store::ChainStore;
    use crate::tx::Transaction;

    /// Builds a 3-block chain in a full node and syncs a light client.
    fn full_chain() -> ChainStore<u64> {
        let store: ChainStore<u64> = ChainStore::new();
        for b in 0..3u64 {
            let txs: Vec<Transaction<u64>> = (0..4)
                .map(|i| Transaction::new(i as u32, b, b * 100 + i))
                .collect();
            let block = Block::assemble(
                store.height(),
                store.tip_digest(),
                Hash32::of("state", &b),
                0,
                b,
                txs,
            );
            store.append(block).expect("valid block");
        }
        store
    }

    fn synced_client(store: &ChainStore<u64>) -> HeaderChain {
        let mut client = HeaderChain::new();
        for h in 0..store.height() {
            client
                .accept(store.block_at(h).expect("present").header)
                .expect("links");
        }
        client
    }

    #[test]
    fn sync_and_verify_inclusion() {
        let store = full_chain();
        let client = synced_client(&store);
        assert_eq!(client.height(), 3);
        assert_eq!(client.tip_digest(), store.tip_digest());

        // Full node produces a proof for tx #2 of block 1.
        let block = store.block_at(1).expect("present");
        let leaves: Vec<Hash32> = block.txs.iter().map(Transaction::digest).collect();
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(2).expect("index in range");

        assert!(client.verify_inclusion(1, &block.txs[2].digest(), &proof));
        // Wrong transaction, wrong height: rejected.
        assert!(!client.verify_inclusion(1, &block.txs[0].digest(), &proof));
        assert!(!client.verify_inclusion(2, &block.txs[2].digest(), &proof));
        assert!(!client.verify_inclusion(99, &block.txs[2].digest(), &proof));
    }

    #[test]
    fn broken_linkage_rejected() {
        let store = full_chain();
        let mut client = HeaderChain::new();
        client
            .accept(store.block_at(0).expect("present").header)
            .unwrap();
        // Skip block 1: block 2's parent does not match.
        let err = client
            .accept(store.block_at(2).expect("present").header)
            .unwrap_err();
        assert!(matches!(err, LightClientError::ParentMismatch { .. }));
    }

    #[test]
    fn wrong_height_rejected() {
        let store = full_chain();
        let mut client = HeaderChain::new();
        let mut header = store.block_at(0).expect("present").header;
        header.height = 5;
        let err = client.accept(header).unwrap_err();
        assert!(matches!(err, LightClientError::HeightMismatch { .. }));
    }

    #[test]
    fn state_roots_exposed() {
        let store = full_chain();
        let client = synced_client(&store);
        assert_eq!(client.state_roots(), store.state_roots());
    }

    #[test]
    fn forged_header_cannot_replace_tip() {
        let store = full_chain();
        let mut client = synced_client(&store);
        // An attacker re-issues block 2 with a different state root; its
        // parent field still names block 1, but the client is at tip 2.
        let mut forged = store.block_at(2).expect("present").header;
        forged.state_root = Hash32::of_bytes(b"lies");
        assert!(client.accept(forged).is_err());
    }
}
