//! Integration between the mempool and the consensus engine: the paper's
//! "wait for another leader to propose" loop, driven the way a real node
//! would drive it.

use std::collections::BTreeMap;

use fl_chain::consensus::engine::{ConsensusEngine, EngineConfig, MinerBehavior};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::mempool::Mempool;
use fl_chain::tx::Transaction;

/// Accumulator contract used as a minimal deterministic state machine.
#[derive(Debug, Clone, Default)]
struct Accumulator {
    total: u64,
}

impl SmartContract for Accumulator {
    type Call = u64;
    type Error = String;

    fn execute(&mut self, _ctx: &TxContext, call: &u64) -> Result<ExecutionOutcome, String> {
        self.total = self.total.wrapping_add(*call);
        Ok(ExecutionOutcome::event(format!("+{call}"), Gas(1)))
    }

    fn state_digest(&self) -> Hash32 {
        Hash32::of("accumulator", &self.total)
    }
}

fn engine(miners: u32, behaviors: &[(u32, MinerBehavior)]) -> ConsensusEngine<Accumulator> {
    let schedule = LeaderSchedule::round_robin((0..miners).collect());
    ConsensusEngine::new(
        Accumulator::default(),
        schedule,
        &behaviors.iter().copied().collect::<BTreeMap<_, _>>(),
        EngineConfig::default(),
    )
    .expect("non-empty miner set")
}

#[test]
fn mempool_drained_into_blocks_until_empty() {
    let mut pool: Mempool<u64> = Mempool::new(100);
    for n in 0..10u64 {
        pool.submit(Transaction::new(0, n, n + 1)).unwrap();
    }
    let mut engine = engine(4, &[]);
    let mut blocks = 0;
    while !pool.is_empty() {
        let txs = pool.drain(4);
        engine.commit_transactions(txs).expect("honest commit");
        blocks += 1;
    }
    assert_eq!(blocks, 3, "10 txs at 4/block = 3 blocks");
    assert_eq!(engine.honest_contract().total, (1..=10).sum::<u64>());
}

#[test]
fn rejected_proposal_requeues_and_retries() {
    // A fraudulent first leader forces a view change; the transactions
    // still commit exactly once, in order.
    let mut pool: Mempool<u64> = Mempool::new(100);
    for n in 0..6u64 {
        pool.submit(Transaction::new(0, n, 10 + n)).unwrap();
    }
    let mut engine = engine(4, &[(0, MinerBehavior::CorruptProposals)]);

    let txs = pool.drain(6);
    // Simulate the node behaviour: requeue on error, retry. (The engine
    // itself retries leaders internally; this exercises the node-level
    // loop for the case where the engine gives up.)
    match engine.commit_transactions(txs.clone()) {
        Ok(report) => {
            assert!(report.attempts > 1, "fraud must cost at least one view");
        }
        Err(_) => {
            pool.requeue(txs);
            let retry = pool.drain(6);
            engine.commit_transactions(retry).expect("retry succeeds");
        }
    }
    assert_eq!(engine.honest_contract().total, (10..16).sum::<u64>());
    assert_eq!(engine.stats().failed_views, 1);
}

#[test]
fn interleaved_senders_keep_nonce_order() {
    let mut pool: Mempool<u64> = Mempool::new(100);
    // Two senders interleaved.
    pool.submit(Transaction::new(0, 0, 1)).unwrap();
    pool.submit(Transaction::new(1, 0, 2)).unwrap();
    pool.submit(Transaction::new(0, 1, 3)).unwrap();
    pool.submit(Transaction::new(1, 1, 4)).unwrap();
    let mut engine = engine(3, &[]);
    let report = engine
        .commit_transactions(pool.drain(10))
        .expect("honest commit");
    assert_eq!(report.events, vec!["+1", "+2", "+3", "+4"]);
}

#[test]
fn seeded_schedule_commits_identically() {
    // The same transactions through a seeded (pseudorandom) leader
    // schedule: different leaders, same state.
    let txs: Vec<Transaction<u64>> = (0..5).map(|n| Transaction::new(0, n, n * n)).collect();

    let mut round_robin = engine(5, &[]);
    round_robin.commit_transactions(txs.clone()).unwrap();

    let schedule = LeaderSchedule::seeded((0..5).collect(), [3u8; 32]);
    let mut seeded = ConsensusEngine::new(
        Accumulator::default(),
        schedule,
        &BTreeMap::new(),
        EngineConfig::default(),
    )
    .unwrap();
    seeded.commit_transactions(txs).unwrap();

    assert_eq!(
        round_robin.honest_contract().total,
        seeded.honest_contract().total
    );
}
