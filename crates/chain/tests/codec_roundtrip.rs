//! Property tests pinning the codec contract for every chain type:
//! `decode(encode(x)) == x`, and malformed bytes — truncations, trailing
//! garbage, hostile length prefixes — return `Err`, never panic.

use fl_chain::block::{Block, BlockHeader};
use fl_chain::codec::{Decode, Encode};
use fl_chain::hash::Hash32;
use fl_chain::tx::Transaction;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_hash(seed: u64) -> Hash32 {
    Hash32::of_bytes(&seed.to_le_bytes())
}

fn arb_tx(sender: u32, nonce: u64, call: Vec<u64>) -> Transaction<Vec<u64>> {
    Transaction::new(sender, nonce, call)
}

fn arb_header(seeds: [u64; 3], height: u64, proposer: u32, view: u64) -> BlockHeader {
    BlockHeader {
        height,
        parent: arb_hash(seeds[0]),
        tx_root: arb_hash(seeds[1]),
        state_root: arb_hash(seeds[2]),
        proposer,
        view,
    }
}

/// Whole-input roundtrip plus the strict rejection sweep: every strict
/// prefix of the encoding and every padded extension must `Err`.
fn assert_codec_contract<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: &T) {
    let enc = value.encode();
    assert_eq!(&T::decode(&enc).unwrap(), value, "roundtrip");
    for cut in 0..enc.len() {
        assert!(T::decode(&enc[..cut]).is_err(), "prefix of {cut} bytes");
    }
    let mut padded = enc;
    padded.push(0);
    assert!(T::decode(&padded).is_err(), "trailing byte");
}

proptest! {
    #[test]
    fn prop_primitives_roundtrip(a in any::<u64>(), b in any::<i64>(), c in any::<u32>()) {
        assert_codec_contract(&a);
        assert_codec_contract(&b);
        assert_codec_contract(&c);
        assert_codec_contract(&(a as usize));
        assert_codec_contract(&f64::from_bits(a)); // NaN payloads included: bit-exact
        assert_codec_contract(&(a, b));
        assert_codec_contract(&(a, b, c));
        assert_codec_contract(&Some(a));
        assert_codec_contract(&Option::<u64>::None);
    }

    #[test]
    fn prop_collections_roundtrip(xs in vec(any::<u64>(), 0..16), s in vec(any::<u8>(), 0..24)) {
        assert_codec_contract(&xs);
        assert_codec_contract(&s);
        let text: String = s.iter().map(|b| char::from(b % 0x7f)).collect();
        assert_codec_contract(&text);
    }

    #[test]
    fn prop_hash_roundtrips(seed in any::<u64>()) {
        assert_codec_contract(&arb_hash(seed));
    }

    #[test]
    fn prop_transaction_roundtrips(
        sender in any::<u32>(),
        nonce in any::<u64>(),
        call in vec(any::<u64>(), 0..8),
    ) {
        assert_codec_contract(&arb_tx(sender, nonce, call));
    }

    #[test]
    fn prop_header_roundtrips(
        s0 in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>(),
        height in any::<u64>(), proposer in any::<u32>(), view in any::<u64>(),
    ) {
        assert_codec_contract(&arb_header([s0, s1, s2], height, proposer, view));
    }

    #[test]
    fn prop_block_roundtrips(
        s0 in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>(),
        height in any::<u64>(), view in any::<u64>(),
        calls in vec(any::<u64>(), 0..6),
    ) {
        let txs: Vec<Transaction<Vec<u64>>> = calls
            .iter()
            .enumerate()
            .map(|(i, &c)| arb_tx(i as u32, c, vec![c, c ^ 0xff]))
            .collect();
        let block = Block {
            header: arb_header([s0, s1, s2], height, 0, view),
            txs,
        };
        assert_codec_contract(&block);
    }

    #[test]
    fn prop_random_bytes_never_panic(bytes in vec(any::<u8>(), 0..64)) {
        // Hostile input must be rejected or decoded — never a panic, and
        // never an allocation proportional to a forged length prefix.
        let _ = u64::decode(&bytes);
        let _ = f64::decode(&bytes);
        let _ = bool::decode(&bytes);
        let _ = String::decode(&bytes);
        let _ = Vec::<u64>::decode(&bytes);
        let _ = Option::<u64>::decode(&bytes);
        let _ = Hash32::decode(&bytes);
        let _ = Transaction::<Vec<u64>>::decode(&bytes);
        let _ = BlockHeader::decode(&bytes);
        let _ = Block::<u64>::decode(&bytes);
    }
}
