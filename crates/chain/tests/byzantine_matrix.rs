//! Byzantine matrix × thread-schedule determinism for the batched
//! commit pipeline.
//!
//! The engine fans proposal execution and verifier re-executions out on
//! `numeric::par` (one slot per miner, combined in index order), so every
//! consensus artifact — block digests, committed state roots, vote
//! counts, view numbers — must be **bit-identical** across thread caps
//! 1, 2, and `available_parallelism` (the same knob `FL_PAR_THREADS`
//! seeds), in every Byzantine configuration: `CorruptProposals` leaders
//! crossed with `AcceptAll` / `RejectAll` verifier minorities. Style
//! follows `shapley/tests/par_determinism.rs`.

use std::collections::BTreeMap;
use std::sync::Mutex;

use fl_chain::consensus::engine::{ConsensusEngine, EngineConfig, MinerBehavior};
use fl_chain::consensus::leader::LeaderSchedule;
use fl_chain::contract::{ExecutionOutcome, SmartContract, TxContext};
use fl_chain::gas::Gas;
use fl_chain::hash::Hash32;
use fl_chain::mempool::Mempool;
use fl_chain::tx::Transaction;
use numeric::par;

/// The thread cap is a process-global knob; serialize the tests on it.
static THREAD_CAP: Mutex<()> = Mutex::new(());

/// A deliberately nonlinear floating-point state machine: any change in
/// execution order or grouping across schedules would move `acc`'s
/// rounding and change the digest.
#[derive(Debug, Clone, Default)]
struct ChaosContract {
    acc: f64,
    count: u64,
}

impl SmartContract for ChaosContract {
    type Call = u64;
    type Error = String;

    fn execute(&mut self, ctx: &TxContext, call: &u64) -> Result<ExecutionOutcome, String> {
        let x = (*call as f64 + ctx.tx_index as f64 * 0.25).sin();
        self.acc = (self.acc + x) * 1.000_000_1 + x.abs().sqrt() * 1e-9;
        self.count += 1;
        Ok(ExecutionOutcome::event(format!("x={x:.3}"), Gas(1)))
    }

    fn state_digest(&self) -> Hash32 {
        Hash32::of("chaos", &(self.acc.to_bits(), self.count))
    }
}

/// Everything consensus decides for one run; compared bit-for-bit
/// across thread caps.
#[derive(Debug, PartialEq)]
struct RunTrace {
    per_block: Vec<(Hash32, Hash32, usize, u32, u64)>,
    replica_roots: Vec<Hash32>,
    heights: Vec<u64>,
    failed_views: u64,
}

const MINERS: u32 = 7;

fn run_matrix_case(behaviors: &[(u32, MinerBehavior)]) -> RunTrace {
    let schedule = LeaderSchedule::round_robin((0..MINERS).collect());
    let map: BTreeMap<u32, MinerBehavior> = behaviors.iter().copied().collect();
    let mut engine = ConsensusEngine::new(
        ChaosContract::default(),
        schedule,
        &map,
        EngineConfig::default(),
    )
    .expect("non-empty miner set");

    // Drive the engine the way a node does: batched admission, sealed
    // bundles, three blocks.
    let mut pool: Mempool<u64> = Mempool::new(256);
    let mut per_block = Vec::new();
    for block in 0..3u64 {
        let batch: Vec<Transaction<u64>> = (0..12)
            .map(|i| Transaction::new((i % 4) as u32, block * 3 + i / 4, block * 100 + i))
            .collect();
        let admission = pool.submit_batch(batch);
        assert!(admission.all_admitted(), "{:?}", admission.rejected);
        let bundle = pool.drain_bundle(usize::MAX);
        let report = engine.commit_bundle(&bundle).expect("honest majority");
        per_block.push((
            report.block_digest,
            report.state_root,
            report.votes_for,
            report.leader,
            report.view,
        ));
    }

    RunTrace {
        per_block,
        replica_roots: (0..MINERS)
            .map(|id| engine.contract_of(id).unwrap().state_digest())
            .collect(),
        heights: (0..MINERS)
            .map(|id| engine.store_of(id).unwrap().height())
            .collect(),
        failed_views: engine.stats().failed_views,
    }
}

/// Runs one Byzantine configuration under thread caps 1, 2, and
/// automatic, requiring exact equality of every consensus artifact.
fn assert_schedule_invariant(behaviors: &[(u32, MinerBehavior)]) {
    let _lock = THREAD_CAP.lock().expect("thread-cap mutex poisoned");
    par::set_max_threads(1);
    let sequential = run_matrix_case(behaviors);
    par::set_max_threads(2);
    let two_threads = run_matrix_case(behaviors);
    par::set_max_threads(0); // automatic: available_parallelism
    let automatic = run_matrix_case(behaviors);
    par::set_max_threads(0);
    assert_eq!(
        sequential, two_threads,
        "1 thread vs 2 threads must be bit-identical ({behaviors:?})"
    );
    assert_eq!(
        sequential, automatic,
        "1 thread vs available_parallelism must be bit-identical ({behaviors:?})"
    );
    // All replicas — including Byzantine ones, which follow the chain —
    // converge on one root.
    assert!(
        sequential.replica_roots.windows(2).all(|w| w[0] == w[1]),
        "replicas diverged: {:?}",
        sequential.replica_roots
    );
    assert!(sequential.heights.iter().all(|&h| h == 3));
}

#[test]
fn all_honest_is_schedule_invariant() {
    assert_schedule_invariant(&[]);
}

#[test]
fn corrupt_leader_is_schedule_invariant() {
    let trace = {
        let _lock = THREAD_CAP.lock().expect("thread-cap mutex poisoned");
        par::set_max_threads(1);
        let t = run_matrix_case(&[(0, MinerBehavior::CorruptProposals)]);
        par::set_max_threads(0);
        t
    };
    // Round-robin: miner 0 leads views 0, 7, 14, … — its proposals are
    // rejected every time it comes up, costing views.
    assert!(trace.failed_views >= 1);
    assert_schedule_invariant(&[(0, MinerBehavior::CorruptProposals)]);
}

#[test]
fn corrupt_leader_with_accept_all_minority_is_schedule_invariant() {
    assert_schedule_invariant(&[
        (0, MinerBehavior::CorruptProposals),
        (1, MinerBehavior::AcceptAll),
        (2, MinerBehavior::AcceptAll),
    ]);
}

#[test]
fn corrupt_leader_with_reject_all_minority_is_schedule_invariant() {
    assert_schedule_invariant(&[
        (0, MinerBehavior::CorruptProposals),
        (3, MinerBehavior::RejectAll),
        (4, MinerBehavior::RejectAll),
    ]);
}

#[test]
fn mixed_byzantine_minority_is_schedule_invariant() {
    assert_schedule_invariant(&[
        (0, MinerBehavior::CorruptProposals),
        (1, MinerBehavior::AcceptAll),
        (2, MinerBehavior::RejectAll),
    ]);
}
