//! Crash-matrix test for the durable chain store.
//!
//! Every [`CrashPoint`] is injected at every interesting log position
//! (mid-segment, exactly at a segment boundary, during a snapshot), and
//! after each crash the reopened chain must be **bit-identical to a
//! clean prefix** of the pre-crash chain — never divergent, never
//! reordered — and must remain appendable up to the full reference
//! chain. Corrupted-CRC and stale-snapshot recoveries ride along.

use fl_chain::block::Block;
use fl_chain::codec::Encode;
use fl_chain::durability::{
    CrashPlan, CrashPoint, DurabilityConfig, DurabilityError, DurableStore,
};
use fl_chain::hash::Hash32;
use fl_chain::log::{LogConfig, RECORD_HEADER_BYTES};
use fl_chain::store::ChainStore;
use fl_chain::tx::Transaction;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directory, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("fl-chain-matrix-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic next block: one transaction, so every framed log record
/// has the same size and segment-boundary positions are predictable.
fn next_block(store: &ChainStore<u64>, salt: u64) -> Block<u64> {
    Block::assemble(
        store.height(),
        store.tip_digest(),
        Hash32::of_bytes(&salt.to_le_bytes()),
        0,
        store.height(),
        vec![Transaction::new(0, store.height(), salt)],
    )
}

/// A clean reference chain of `n` blocks (the ground truth every
/// recovery is compared against).
fn reference_chain(n: u64) -> ChainStore<u64> {
    let store: ChainStore<u64> = ChainStore::new();
    for i in 0..n {
        store.append(next_block(&store, i)).unwrap();
    }
    store
}

/// Byte-for-byte equality of two chains up to `height`.
fn assert_bit_identical_prefix(got: &ChainStore<u64>, reference: &ChainStore<u64>, height: u64) {
    assert_eq!(got.height(), height, "recovered chain length");
    for h in 0..height {
        assert_eq!(
            got.block_at(h).unwrap().encode(),
            reference.block_at(h).unwrap().encode(),
            "block {h} must be bit-identical to the clean reference"
        );
    }
    assert_eq!(got.verify_chain(), Ok(()), "recovered chain must verify");
}

/// Config sized so exactly two block records fit one segment: append 2
/// starts a new segment, making `crash_at = 2` a segment-boundary crash
/// and `crash_at = 1` a mid-segment crash.
fn two_records_per_segment() -> DurabilityConfig {
    let probe = reference_chain(1).block_at(0).unwrap().encode().len();
    DurabilityConfig {
        log: LogConfig {
            segment_bytes: 2 * (RECORD_HEADER_BYTES + probe),
        },
        snapshot_every: u64::MAX, // snapshots driven explicitly below
    }
}

#[test]
fn crash_matrix_reopen_is_clean_prefix() {
    const TOTAL: u64 = 5;
    let reference = reference_chain(TOTAL);

    struct Case {
        name: &'static str,
        point: CrashPoint,
        crash_at: u64,
        /// Blocks that must survive: the crashing append is lost for
        /// torn/unflushed records, durable for a post-flush crash.
        survive: u64,
        torn_tail: bool,
    }
    let cases = [
        Case {
            name: "torn record, mid-segment",
            point: CrashPoint::TornRecord,
            crash_at: 1,
            survive: 1,
            torn_tail: true,
        },
        Case {
            name: "torn record, segment boundary",
            point: CrashPoint::TornRecord,
            crash_at: 2,
            survive: 2,
            torn_tail: true,
        },
        Case {
            name: "lost before flush, mid-segment",
            point: CrashPoint::BeforeFlush,
            crash_at: 1,
            survive: 1,
            torn_tail: false,
        },
        Case {
            name: "lost before flush, segment boundary",
            point: CrashPoint::BeforeFlush,
            crash_at: 2,
            survive: 2,
            torn_tail: false,
        },
        Case {
            name: "after flush, mid-segment",
            point: CrashPoint::AfterFlushBeforeSnapshot,
            crash_at: 1,
            survive: 2,
            torn_tail: false,
        },
        Case {
            name: "after flush, segment boundary",
            point: CrashPoint::AfterFlushBeforeSnapshot,
            crash_at: 2,
            survive: 3,
            torn_tail: false,
        },
    ];

    for case in cases {
        let dir = TestDir::new("case");
        let config = two_records_per_segment();
        let (mut durable, _) = DurableStore::<u64>::open(dir.path(), config).unwrap();
        durable.set_crash_plan(CrashPlan {
            point: case.point,
            at: case.crash_at,
        });

        let mut died = false;
        for i in 0..TOTAL {
            let block = next_block(durable.store(), i);
            match durable.append(block) {
                Ok(()) => {}
                Err(DurabilityError::Crashed) => {
                    died = true;
                    break;
                }
                Err(other) => panic!("{}: unexpected error {other:?}", case.name),
            }
        }
        assert!(died, "{}: the crash plan must fire", case.name);

        // Reopen: the chain must be a clean prefix of the reference.
        let (reopened, report) = DurableStore::<u64>::open(dir.path(), config).unwrap();
        assert_bit_identical_prefix(reopened.store(), &reference, case.survive);
        assert_eq!(
            report.truncated.is_some(),
            case.torn_tail,
            "{}: torn-tail detection",
            case.name
        );

        // The recovered chain is live: appending the missing blocks
        // converges on the full reference chain.
        let mut durable = reopened;
        for i in case.survive..TOTAL {
            let block = next_block(durable.store(), i);
            durable.append(block).unwrap();
        }
        drop(durable);
        let (full, report) = DurableStore::<u64>::open(dir.path(), config).unwrap();
        assert!(
            report.truncated.is_none(),
            "{}: second reopen clean",
            case.name
        );
        assert_bit_identical_prefix(full.store(), &reference, TOTAL);
    }
}

#[test]
fn torn_snapshot_is_rejected_and_falls_back() {
    let dir = TestDir::new("torn-snap");
    let config = two_records_per_segment();
    let (mut durable, _) = DurableStore::<u64>::open(dir.path(), config).unwrap();
    for i in 0..2u64 {
        let block = next_block(durable.store(), i);
        durable.append(block).unwrap();
    }
    durable.write_snapshot(b"good-at-2").unwrap();
    for i in 2..4u64 {
        let block = next_block(durable.store(), i);
        durable.append(block).unwrap();
    }
    // Second snapshot write dies mid-file.
    durable.set_crash_plan(CrashPlan {
        point: CrashPoint::TornSnapshot,
        at: 1,
    });
    assert_eq!(
        durable.write_snapshot(b"torn-at-4"),
        Err(DurabilityError::Crashed)
    );
    drop(durable);

    let (reopened, report) = DurableStore::<u64>::open(dir.path(), config).unwrap();
    // Every flushed block survived; the torn snapshot did not.
    assert_bit_identical_prefix(reopened.store(), &reference_chain(4), 4);
    assert_eq!(report.snapshots_rejected, 1, "torn snapshot rejected");
    let snap = report.snapshot.expect("older snapshot survives");
    assert_eq!(snap.height, 2);
    assert_eq!(snap.state, b"good-at-2");
}

#[test]
fn stale_snapshot_still_recovers_full_chain() {
    // Crash after flushing block 3 but before any newer snapshot: the
    // snapshot is two blocks behind the durable tip. Recovery must serve
    // the *full* chain and the stale-but-valid snapshot.
    let dir = TestDir::new("stale-snap");
    let config = two_records_per_segment();
    let (mut durable, _) = DurableStore::<u64>::open(dir.path(), config).unwrap();
    for i in 0..2u64 {
        let block = next_block(durable.store(), i);
        durable.append(block).unwrap();
    }
    durable.write_snapshot(b"state-at-2").unwrap();
    durable.set_crash_plan(CrashPlan {
        point: CrashPoint::AfterFlushBeforeSnapshot,
        at: 3,
    });
    let block = next_block(durable.store(), 2);
    durable.append(block).unwrap();
    let block = next_block(durable.store(), 3);
    assert_eq!(durable.append(block), Err(DurabilityError::Crashed));
    drop(durable);

    let (reopened, report) = DurableStore::<u64>::open(dir.path(), config).unwrap();
    assert_bit_identical_prefix(reopened.store(), &reference_chain(4), 4);
    let snap = report.snapshot.expect("stale snapshot is still valid");
    assert_eq!(snap.height, 2, "snapshot lags the durable tip");
    assert_eq!(snap.state, b"state-at-2");
}

#[test]
fn corrupted_record_crc_truncates_to_clean_prefix() {
    let dir = TestDir::new("crc");
    let config = two_records_per_segment();
    let (mut durable, _) = DurableStore::<u64>::open(dir.path(), config).unwrap();
    for i in 0..3u64 {
        let block = next_block(durable.store(), i);
        durable.append(block).unwrap();
    }
    drop(durable);
    // Flip one payload byte of the final record (in the final segment).
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    let last_segment = segments.last().unwrap();
    let mut bytes = std::fs::read(last_segment).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(last_segment, &bytes).unwrap();

    let (reopened, report) = DurableStore::<u64>::open(dir.path(), config).unwrap();
    assert!(report.truncated.is_some(), "bad CRC must be detected");
    assert_bit_identical_prefix(reopened.store(), &reference_chain(3), 2);
}
