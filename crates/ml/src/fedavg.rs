//! FedAvg aggregation over flat weight vectors.
//!
//! McMahan et al.'s federated averaging, the paper's global train epoch.
//! The paper's Algorithm 1 aggregates *uniformly* within groups
//! (`W_j = (1/|G_j|) Σ w_i`) and across coalitions
//! (`W_S = (1/|S|) Σ W_j`), so uniform averaging is the default;
//! sample-count weighting is provided for the classic FedAvg variant.

use numeric::linalg::mean_vectors;

/// Uniform average of flat weight vectors (the paper's aggregation).
///
/// # Panics
///
/// Panics if `updates` is empty or lengths mismatch.
pub fn fedavg_uniform(updates: &[Vec<f64>]) -> Vec<f64> {
    mean_vectors(updates)
}

/// Sample-count-weighted FedAvg: `Σ n_i·w_i / Σ n_i`.
///
/// # Panics
///
/// Panics if inputs are empty, lengths mismatch, or all weights are zero.
pub fn fedavg_weighted(updates: &[Vec<f64>], sample_counts: &[usize]) -> Vec<f64> {
    assert!(!updates.is_empty(), "fedavg of zero updates");
    assert_eq!(
        updates.len(),
        sample_counts.len(),
        "one sample count per update"
    );
    let total: usize = sample_counts.iter().sum();
    assert!(total > 0, "total sample count must be positive");
    let dim = updates[0].len();
    let mut acc = vec![0.0; dim];
    for (u, &n) in updates.iter().zip(sample_counts) {
        assert_eq!(u.len(), dim, "update length mismatch");
        let w = n as f64 / total as f64;
        for (a, &x) in acc.iter_mut().zip(u) {
            *a += w * x;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_average() {
        let avg = fedavg_uniform(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn weighted_reduces_to_uniform_for_equal_counts() {
        let updates = vec![vec![1.0, 0.0], vec![3.0, 2.0]];
        assert_eq!(fedavg_weighted(&updates, &[5, 5]), fedavg_uniform(&updates));
    }

    #[test]
    fn weighted_respects_counts() {
        let avg = fedavg_weighted(&[vec![0.0], vec![10.0]], &[9, 1]);
        assert!((avg[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_update_identity() {
        assert_eq!(fedavg_uniform(&[vec![7.0, 8.0]]), vec![7.0, 8.0]);
        assert_eq!(fedavg_weighted(&[vec![7.0]], &[3]), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn empty_weighted_panics() {
        let _ = fedavg_weighted(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_counts_panic() {
        let _ = fedavg_weighted(&[vec![1.0]], &[0]);
    }

    proptest! {
        #[test]
        fn prop_uniform_average_bounded_by_extremes(
            a in proptest::collection::vec(-100.0f64..100.0, 1..8),
            b in proptest::collection::vec(-100.0f64..100.0, 1..8),
        ) {
            let n = a.len().min(b.len());
            let (a, b) = (a[..n].to_vec(), b[..n].to_vec());
            let avg = fedavg_uniform(&[a.clone(), b.clone()]);
            for i in 0..n {
                let lo = a[i].min(b[i]);
                let hi = a[i].max(b[i]);
                prop_assert!(avg[i] >= lo - 1e-12 && avg[i] <= hi + 1e-12);
            }
        }

        #[test]
        fn prop_weighted_is_convex_combination(
            u in proptest::collection::vec(-10.0f64..10.0, 3),
            v in proptest::collection::vec(-10.0f64..10.0, 3),
            n1 in 1usize..100, n2 in 1usize..100,
        ) {
            let avg = fedavg_weighted(&[u.clone(), v.clone()], &[n1, n2]);
            let w = n1 as f64 / (n1 + n2) as f64;
            for i in 0..3 {
                let expect = w * u[i] + (1.0 - w) * v[i];
                prop_assert!((avg[i] - expect).abs() < 1e-9);
            }
        }
    }
}
