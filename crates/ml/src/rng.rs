//! Deterministic random number generation for data synthesis.
//!
//! Uses xoshiro256** (Blackman & Vigna) seeded through splitmix64 — a
//! fixed, documented algorithm, so datasets regenerate identically on any
//! platform and any crate version. `rand`'s `StdRng` explicitly reserves
//! the right to change algorithms between versions, which would silently
//! break the golden values in the experiment suite; the ML layer therefore
//! owns its generator.
//!
//! This generator is for *simulation randomness* (data, shuffles, noise).
//! Cryptographic masks use `fl-crypto`'s ChaCha20 instead.

/// xoshiro256** pseudorandom generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the generator; any `u64` (including 0) is a valid seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion, per the xoshiro reference implementation.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Self { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the high 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Standard normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn next_gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Deterministic permutation of `0..n`, the paper's
    /// `permutation(e, r, I)` with `seed` already combining `e` and `r`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xoshiro256::seed_from_u64(0);
        // splitmix expansion guarantees a nonzero state even for seed 0.
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = Xoshiro256::seed_from_u64(4);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn gaussian_with_parameters() {
        let mut r = Xoshiro256::seed_from_u64(6);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian_with(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(7);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle must move elements"
        );
    }

    #[test]
    fn permutation_deterministic() {
        let p1 = Xoshiro256::seed_from_u64(8).permutation(20);
        let p2 = Xoshiro256::seed_from_u64(8).permutation(20);
        assert_eq!(p1, p2);
        let p3 = Xoshiro256::seed_from_u64(9).permutation(20);
        assert_ne!(p1, p3);
    }

    #[test]
    fn empty_and_single_shuffle() {
        let mut r = Xoshiro256::seed_from_u64(10);
        let mut empty: Vec<u8> = vec![];
        r.shuffle(&mut empty);
        let mut one = vec![42];
        r.shuffle(&mut one);
        assert_eq!(one, vec![42]);
    }
}
