//! Machine-learning substrate for transparent-fl.
//!
//! Everything the paper's Sect. V experiment needs:
//!
//! * [`rng`] — a tiny deterministic PRNG (xoshiro256**) plus Gaussian
//!   sampling; data generation must be reproducible from a single seed so
//!   that miners re-executing the evaluation agree bit-for-bit.
//! * [`dataset`] — an in-memory labelled dataset and the synthetic
//!   "optdigits-like" generator substituting for the UCI handwritten
//!   digits data (see DESIGN.md §3 for the substitution argument).
//! * [`noise`] — the paper's data-quality degradation:
//!   `d_i = d_i + N(0, σ·i)` for owner `i`.
//! * [`split`] — train/test split and per-owner sharding.
//! * [`logreg`] — multinomial (softmax) logistic regression trained with
//!   full-batch gradient descent, the paper's local trainer.
//! * [`fedavg`] — FedAvg over flat weight vectors.
//! * [`metrics`] — accuracy and friends; test-set accuracy is the paper's
//!   utility function `u(·)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod fedavg;
pub mod logreg;
pub mod metrics;
pub mod noise;
pub mod rng;
pub mod sgd;
pub mod split;

pub use dataset::{Dataset, DatasetView, SyntheticDigits};
pub use logreg::{Design, LogisticModel, TrainConfig};
pub use rng::Xoshiro256;
