//! The paper's data-quality degradation model.
//!
//! Sect. V-A1: "To simulate different data quality of each data owner, we
//! add Gaussian noise with an increasing sigma, `d_i = d_i + N(0, σ·i)`.
//! As a result, `d_0` has the best data quality, `d_1` has worse data
//! quality, and so on." Owner 0's shard is untouched; owner `i` receives
//! zero-mean Gaussian feature noise with standard deviation `σ·i`.

use crate::dataset::Dataset;
use crate::rng::Xoshiro256;

/// Adds `N(0, std_dev)` noise to every feature of `dataset` in place.
///
/// `std_dev == 0.0` leaves the data bit-identical (no RNG draws), which
/// keeps the σ=0 experiment exactly equal across owners.
pub fn add_gaussian_noise(dataset: &mut Dataset, std_dev: f64, rng: &mut Xoshiro256) {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    if std_dev == 0.0 {
        return;
    }
    for v in dataset.features.as_mut_slice() {
        *v += rng.next_gaussian_with(0.0, std_dev);
    }
}

/// Applies the paper's owner-indexed schedule: owner `i`'s shard gets
/// noise with `σ·i`.
///
/// A fresh, deterministic sub-generator is derived per owner so that the
/// result does not depend on the iteration order of earlier owners.
pub fn apply_quality_schedule(shards: &mut [Dataset], sigma: f64, seed: u64) {
    assert!(sigma >= 0.0, "sigma must be non-negative");
    for (i, shard) in shards.iter_mut().enumerate() {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ (0x9e37_79b9 + i as u64));
        add_gaussian_noise(shard, sigma * i as f64, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;

    fn shards(n: usize) -> Vec<Dataset> {
        let ds = SyntheticDigits::small().generate(1);
        let per = ds.len() / n;
        (0..n)
            .map(|i| ds.subset(&(i * per..(i + 1) * per).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut s = shards(3);
        let before = s.clone();
        apply_quality_schedule(&mut s, 0.0, 42);
        assert_eq!(s, before);
    }

    #[test]
    fn owner_zero_untouched_even_with_noise() {
        let mut s = shards(3);
        let before = s[0].clone();
        apply_quality_schedule(&mut s, 2.0, 42);
        assert_eq!(s[0], before, "owner 0 has σ·0 = 0 noise");
        assert_ne!(s[1].features, before.features);
    }

    #[test]
    fn noise_magnitude_increases_with_owner_index() {
        let clean = shards(5);
        let mut noisy = clean.clone();
        apply_quality_schedule(&mut noisy, 1.0, 7);
        let mut deviations = Vec::new();
        for (c, n) in clean.iter().zip(&noisy) {
            let dev: f64 = c
                .features
                .as_slice()
                .iter()
                .zip(n.features.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / c.features.as_slice().len() as f64;
            deviations.push(dev.sqrt());
        }
        for i in 1..deviations.len() {
            assert!(
                deviations[i] > deviations[i - 1],
                "owner {i} must be noisier than owner {}: {deviations:?}",
                i - 1
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = shards(3);
        let mut b = shards(3);
        apply_quality_schedule(&mut a, 1.5, 11);
        apply_quality_schedule(&mut b, 1.5, 11);
        assert_eq!(a, b);
        let mut c = shards(3);
        apply_quality_schedule(&mut c, 1.5, 12);
        assert_ne!(a[1], c[1]);
    }

    #[test]
    fn labels_never_touched() {
        let mut s = shards(4);
        let labels_before: Vec<Vec<usize>> = s.iter().map(|d| d.labels.clone()).collect();
        apply_quality_schedule(&mut s, 3.0, 1);
        let labels_after: Vec<Vec<usize>> = s.iter().map(|d| d.labels.clone()).collect();
        assert_eq!(labels_before, labels_after);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        let mut s = shards(2);
        apply_quality_schedule(&mut s, -1.0, 0);
    }
}
