//! Mini-batch stochastic gradient descent.
//!
//! The paper's experiments use full-batch gradient descent, which the
//! [`crate::logreg`] trainer implements. Real cross-silo deployments at
//! larger scale use mini-batches; this module provides that variant with
//! *deterministic* batch shuffling (seeded xoshiro), preserving the
//! re-execution property the blockchain layer depends on: two miners
//! replaying the same seed train bit-identical models.

use numeric::Matrix;

use crate::dataset::Dataset;
use crate::logreg::LogisticModel;
use crate::rng::Xoshiro256;

/// Mini-batch SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Step size.
    pub learning_rate: f64,
    /// Passes over the data.
    pub epochs: usize,
    /// Examples per batch (clamped to the dataset size).
    pub batch_size: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed — part of the protocol agreement, not an
    /// implementation detail.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 5,
            batch_size: 32,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// Trains `model` in place with mini-batch SGD.
///
/// # Panics
///
/// Panics on an empty dataset, zero batch size, or class mismatch.
pub fn train_sgd(model: &mut LogisticModel, data: &Dataset, config: &SgdConfig) {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(config.batch_size > 0, "batch size must be positive");
    assert_eq!(
        data.num_classes,
        model.num_classes(),
        "class count mismatch"
    );

    let n = data.len();
    let batch = config.batch_size.min(n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Xoshiro256::seed_from_u64(config.seed);

    // Condition once; every mini-batch gathers already-conditioned rows
    // instead of re-scaling and re-appending the bias column per step.
    let design = crate::logreg::Design::new(data);
    let step = crate::logreg::TrainConfig {
        learning_rate: config.learning_rate,
        epochs: 1,
        l2: config.l2,
    };
    for _ in 0..config.epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(batch) {
            // One full-batch step *on the mini-batch* re-uses the
            // well-tested gradient path of the base trainer.
            model.train_design(&design.gather(chunk), &step);
        }
    }
}

/// Trains a fresh model with mini-batch SGD.
pub fn train_model_sgd(data: &Dataset, config: &SgdConfig) -> LogisticModel {
    let mut model = LogisticModel::zeros(data.num_features(), data.num_classes);
    train_sgd(&mut model, data, config);
    model
}

/// Accuracy-matched comparison helper: trains both the full-batch and the
/// SGD trainer on the same data and returns `(full_batch_acc, sgd_acc)`
/// on `test`. Used by the ablation tests and the optimizer bench.
pub fn compare_trainers(
    train: &Dataset,
    test: &Dataset,
    full_batch: &crate::logreg::TrainConfig,
    sgd: &SgdConfig,
) -> (f64, f64) {
    let fb_model = crate::logreg::train_model(train, full_batch);
    let sgd_model = train_model_sgd(train, sgd);
    (
        crate::metrics::model_accuracy(&fb_model, test),
        crate::metrics::model_accuracy(&sgd_model, test),
    )
}

/// Convenience: flattens a matrix — exposed for tests that need to peek
/// at weight movement between optimizers.
pub fn weight_delta(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;
    use crate::logreg::TrainConfig;
    use crate::metrics::model_accuracy;
    use crate::split::train_test_split;

    fn data() -> Dataset {
        SyntheticDigits::small().generate(3)
    }

    #[test]
    fn sgd_learns_the_task() {
        let ds = data();
        let split = train_test_split(&ds, 0.8, 1);
        let model = train_model_sgd(
            &split.train,
            &SgdConfig {
                learning_rate: 0.3,
                epochs: 8,
                batch_size: 32,
                l2: 1e-4,
                seed: 9,
            },
        );
        let acc = model_accuracy(&model, &split.test);
        assert!(acc > 0.9, "SGD should learn separable digits, got {acc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = data();
        let config = SgdConfig {
            seed: 5,
            ..Default::default()
        };
        let a = train_model_sgd(&ds, &config);
        let b = train_model_sgd(&ds, &config);
        assert_eq!(a, b, "same seed must reproduce bit-identical weights");
        let c = train_model_sgd(&ds, &SgdConfig { seed: 6, ..config });
        assert_ne!(a, c, "different seed must reorder batches");
    }

    #[test]
    fn batch_size_larger_than_data_is_full_batch() {
        let ds = data().subset(&(0..50).collect::<Vec<_>>());
        let sgd = train_model_sgd(
            &ds,
            &SgdConfig {
                learning_rate: 0.2,
                epochs: 3,
                batch_size: 10_000,
                l2: 0.0,
                seed: 1,
            },
        );
        // One chunk per epoch == full-batch GD with the same step count;
        // the shuffled row order only permutes float summation, so the
        // weights agree to numerical noise.
        let mut fb = LogisticModel::zeros(ds.num_features(), ds.num_classes);
        fb.train(
            &ds,
            &TrainConfig {
                learning_rate: 0.2,
                epochs: 3,
                l2: 0.0,
            },
        );
        let delta = weight_delta(sgd.weights(), fb.weights());
        assert!(delta < 1e-9, "weight delta {delta} too large");
    }

    #[test]
    fn comparable_accuracy_to_full_batch() {
        let ds = data();
        let split = train_test_split(&ds, 0.8, 2);
        let (fb, sgd) = compare_trainers(
            &split.train,
            &split.test,
            &TrainConfig {
                learning_rate: 0.5,
                epochs: 40,
                l2: 1e-4,
            },
            &SgdConfig {
                learning_rate: 0.3,
                epochs: 8,
                batch_size: 32,
                l2: 1e-4,
                seed: 3,
            },
        );
        assert!(
            (fb - sgd).abs() < 0.1,
            "optimizers should land in the same accuracy band: fb={fb}, sgd={sgd}"
        );
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let ds = data();
        let mut model = LogisticModel::zeros(ds.num_features(), ds.num_classes);
        train_sgd(
            &mut model,
            &ds,
            &SgdConfig {
                batch_size: 0,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_data_panics() {
        let ds = data();
        let empty = ds.subset(&[]);
        let mut model = LogisticModel::zeros(64, 10);
        train_sgd(&mut model, &empty, &SgdConfig::default());
    }

    #[test]
    fn weight_delta_zero_for_identical() {
        let ds = data();
        let m = train_model_sgd(&ds, &SgdConfig::default());
        assert_eq!(weight_delta(m.weights(), m.weights()), 0.0);
    }
}
