//! Evaluation metrics.
//!
//! The paper's utility function `u(W)` is the accuracy of the model with
//! weights `W` on the held-out test set; [`accuracy`] is therefore the
//! hinge on which every Shapley value in the system turns.

use crate::dataset::Dataset;
use crate::logreg::{Design, LogisticModel};

/// Fraction of predictions matching the labels.
///
/// # Panics
///
/// Panics on length mismatch or empty inputs.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    assert!(!labels.is_empty(), "accuracy of zero examples is undefined");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Accuracy of `model` on `data` — the paper's `u(·)`.
pub fn model_accuracy(model: &LogisticModel, data: &Dataset) -> f64 {
    accuracy(&model.predict(&data.features), &data.labels)
}

/// Accuracy of `model` over a prepared [`Design`] — bit-identical to
/// [`model_accuracy`] on the underlying dataset, but without re-running
/// the conditioning pass. The accuracy utilities build the test design
/// once and evaluate every one of their `2^m` coalition models through
/// this.
pub fn model_accuracy_design(model: &LogisticModel, design: &Design) -> f64 {
    accuracy(&model.predict_design(design), design.labels())
}

/// Row-normalized confusion matrix counts: `counts[actual][predicted]`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut counts = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(p < num_classes && l < num_classes, "class out of range");
        counts[l][p] += 1;
    }
    counts
}

/// Per-class recall (diagonal over row sums); `None` for absent classes.
pub fn per_class_recall(confusion: &[Vec<usize>]) -> Vec<Option<f64>> {
    confusion
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let total: usize = row.iter().sum();
            (total > 0).then(|| row[i] as f64 / total as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;
    use crate::logreg::{train_model, TrainConfig};

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[1, 1, 1]), 0.0);
        assert_eq!(accuracy(&[0, 1], &[0, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_accuracy_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_accuracy_panics() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn confusion_counts() {
        let cm = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(cm[0], vec![1, 0, 0]);
        assert_eq!(cm[1], vec![0, 1, 0]);
        assert_eq!(cm[2], vec![0, 1, 1]);
    }

    #[test]
    fn recall_handles_absent_class() {
        let cm = confusion_matrix(&[0, 0], &[0, 0], 2);
        let recall = per_class_recall(&cm);
        assert_eq!(recall[0], Some(1.0));
        assert_eq!(recall[1], None);
    }

    #[test]
    fn model_accuracy_on_trained_model() {
        let ds = SyntheticDigits::small().generate(1);
        let model = train_model(
            &ds,
            &TrainConfig {
                learning_rate: 0.5,
                epochs: 60,
                l2: 1e-4,
            },
        );
        let acc = model_accuracy(&model, &ds);
        assert!(acc > 0.9, "training accuracy {acc} too low");
    }
}
