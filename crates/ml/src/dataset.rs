//! Labelled datasets and the synthetic handwritten-digits generator.
//!
//! The paper evaluates on the UCI *Optical Recognition of Handwritten
//! Digits* dataset: 5620 instances, 64 attributes (8×8 bitmaps with values
//! 0–16), 10 classes. That file is not redistributable inside this
//! offline workspace, so [`SyntheticDigits`] generates a stand-in with the
//! same shape: ten Gaussian class-clusters in 64 dimensions, feature
//! values clipped to `[0, 16]`. The contribution-evaluation experiments
//! only rely on (a) the data being separable enough for logistic
//! regression to learn, and (b) per-owner Gaussian noise degrading owner
//! quality monotonically — both hold by construction.

use numeric::Matrix;

use crate::rng::Xoshiro256;

/// Number of features in the digits layout (8×8 bitmap).
pub const DIGITS_FEATURES: usize = 64;
/// Number of classes in the digits layout.
pub const DIGITS_CLASSES: usize = 10;
/// Instance count of the original UCI file.
pub const DIGITS_INSTANCES: usize = 5620;

/// An in-memory labelled classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix, one row per example.
    pub features: Matrix,
    /// Class label per example, in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Total number of classes.
    pub num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shapes and label range.
    ///
    /// # Panics
    ///
    /// Panics if row count and label count differ, or a label is out of
    /// range.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows ({}) must match labels ({})",
            features.rows(),
            labels.len()
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < num_classes ({num_classes})"
        );
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Selects the examples at `indices` (cloning rows).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let cols = self.features.cols();
        let mut data = Vec::with_capacity(indices.len() * cols);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds ({})", self.len());
            data.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            features: Matrix::from_vec(indices.len(), cols, data),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Concatenates several datasets (used to form coalition training
    /// sets for the ground-truth Shapley computation).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or schemas mismatch.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "cannot concat zero datasets");
        let cols = parts[0].num_features();
        let classes = parts[0].num_classes;
        let total: usize = parts.iter().map(|d| d.len()).sum();
        let mut data = Vec::with_capacity(total * cols);
        let mut labels = Vec::with_capacity(total);
        for part in parts {
            assert_eq!(part.num_features(), cols, "feature mismatch in concat");
            assert_eq!(part.num_classes, classes, "class mismatch in concat");
            data.extend_from_slice(part.features.as_slice());
            labels.extend_from_slice(&part.labels);
        }
        Dataset {
            features: Matrix::from_vec(total, cols, data),
            labels,
            num_classes: classes,
        }
    }

    /// A zero-copy view over this whole dataset (a one-part
    /// [`DatasetView`]).
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::of_parts(vec![self])
    }

    /// Per-class example counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

/// A zero-copy concatenation view over owner shards.
///
/// Coalition retraining (the paper's native-SV ground truth) pools the
/// member shards for every one of the `2^n` coalitions;
/// [`Dataset::concat`] clones every row to do so. A `DatasetView` instead
/// holds shard *references* in coalition order — the row sequence is
/// identical to `Dataset::concat(&parts)` but no feature row is copied
/// until the trainer gathers them into its conditioned design matrix
/// (one fused gather-scale-bias pass in `logreg::Design::from_view`).
#[derive(Debug, Clone)]
pub struct DatasetView<'a> {
    parts: Vec<&'a Dataset>,
    len: usize,
}

impl<'a> DatasetView<'a> {
    /// Builds a view over `parts` in order.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or schemas (feature count, class
    /// count) mismatch — the same contract as [`Dataset::concat`].
    pub fn of_parts(parts: Vec<&'a Dataset>) -> Self {
        assert!(!parts.is_empty(), "cannot view zero datasets");
        let cols = parts[0].num_features();
        let classes = parts[0].num_classes;
        for part in &parts {
            assert_eq!(part.num_features(), cols, "feature mismatch in view");
            assert_eq!(part.num_classes, classes, "class mismatch in view");
        }
        let len = parts.iter().map(|d| d.len()).sum();
        Self { parts, len }
    }

    /// Total number of examples across all parts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when every part is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of features per example.
    pub fn num_features(&self) -> usize {
        self.parts[0].num_features()
    }

    /// Total number of classes.
    pub fn num_classes(&self) -> usize {
        self.parts[0].num_classes
    }

    /// Iterates `(feature_row, label)` pairs in concatenation order.
    pub fn rows(&self) -> impl Iterator<Item = (&'a [f64], usize)> + '_ {
        self.parts
            .iter()
            .flat_map(|part| (0..part.len()).map(move |r| (part.features.row(r), part.labels[r])))
    }

    /// Materializes the view into an owned dataset (row-identical to
    /// [`Dataset::concat`] over the same parts).
    pub fn materialize(&self) -> Dataset {
        Dataset::concat(&self.parts)
    }
}

/// Generator configuration for the synthetic digits substitute.
#[derive(Debug, Clone)]
pub struct SyntheticDigits {
    /// Number of instances to generate.
    pub instances: usize,
    /// Number of features.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Distance scale of class centroids (larger = more separable).
    pub centroid_spread: f64,
    /// Within-class standard deviation.
    pub within_class_std: f64,
    /// Feature clipping range, matching the 0–16 bitmap counts.
    pub clip: (f64, f64),
}

impl Default for SyntheticDigits {
    fn default() -> Self {
        // Spread/std are tuned to the regime the real optdigits occupy
        // for logistic regression: an *easy* task where one owner's shard
        // already trains to ~90% accuracy. In that saturated regime the
        // paper's Fig. 1 shape emerges naturally — clean iid shards all
        // contribute almost equally (near-uniform SV at σ = 0), while a
        // noisy shard actively hurts coalitions it joins, pushing its SV
        // down monotonically with the noise level.
        Self {
            instances: DIGITS_INSTANCES,
            features: DIGITS_FEATURES,
            classes: DIGITS_CLASSES,
            centroid_spread: 4.0,
            within_class_std: 1.5,
            clip: (0.0, 16.0),
        }
    }
}

impl SyntheticDigits {
    /// A small configuration for fast unit tests (600 instances).
    pub fn small() -> Self {
        Self {
            instances: 600,
            ..Self::default()
        }
    }

    /// Generates the dataset deterministically from `seed`.
    ///
    /// Class centroids sit at `8 + spread·(uniform − 0.5)` per feature;
    /// examples are centroid + within-class Gaussian noise, clipped to the
    /// bitmap range. Classes are assigned round-robin so the histogram is
    /// balanced like the UCI file.
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.classes >= 2, "need at least two classes");
        assert!(self.features >= 1, "need at least one feature");
        let mut rng = Xoshiro256::seed_from_u64(seed);

        let (lo, hi) = self.clip;
        let mid = (lo + hi) / 2.0;
        let centroids: Vec<Vec<f64>> = (0..self.classes)
            .map(|_| {
                (0..self.features)
                    .map(|_| mid + self.centroid_spread * (rng.next_f64() - 0.5) * 2.0)
                    .collect()
            })
            .collect();

        let mut data = Vec::with_capacity(self.instances * self.features);
        let mut labels = Vec::with_capacity(self.instances);
        for i in 0..self.instances {
            let class = i % self.classes;
            labels.push(class);
            for &centre in &centroids[class] {
                let v = centre + rng.next_gaussian_with(0.0, self.within_class_std);
                data.push(v.clamp(lo, hi));
            }
        }

        // Shuffle rows so consecutive examples are not class-ordered.
        let mut order: Vec<usize> = (0..self.instances).collect();
        rng.shuffle(&mut order);
        let staged = Dataset::new(
            Matrix::from_vec(self.instances, self.features, data),
            labels,
            self.classes,
        );
        staged.subset(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_matches_uci_layout() {
        let cfg = SyntheticDigits::default();
        assert_eq!(cfg.instances, 5620);
        assert_eq!(cfg.features, 64);
        assert_eq!(cfg.classes, 10);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticDigits::small();
        assert_eq!(cfg.generate(1), cfg.generate(1));
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn generated_values_clipped() {
        let ds = SyntheticDigits::small().generate(3);
        for &v in ds.features.as_slice() {
            assert!((0.0..=16.0).contains(&v), "feature value {v} outside range");
        }
    }

    #[test]
    fn class_histogram_balanced() {
        let ds = SyntheticDigits::small().generate(4);
        let hist = ds.class_histogram();
        assert_eq!(hist.len(), 10);
        let min = *hist.iter().min().unwrap();
        let max = *hist.iter().max().unwrap();
        assert!(max - min <= 1, "round-robin classes must be balanced");
    }

    #[test]
    fn subset_picks_rows() {
        let ds = SyntheticDigits::small().generate(5);
        let sub = ds.subset(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.features.row(1), ds.features.row(2));
        assert_eq!(sub.labels[2], ds.labels[4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subset_out_of_bounds_panics() {
        let ds = SyntheticDigits::small().generate(5);
        let _ = ds.subset(&[10_000]);
    }

    #[test]
    fn concat_preserves_rows() {
        let ds = SyntheticDigits::small().generate(6);
        let a = ds.subset(&[0, 1]);
        let b = ds.subset(&[2]);
        let joined = Dataset::concat(&[&a, &b]);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.features.row(2), ds.features.row(2));
    }

    #[test]
    #[should_panic(expected = "zero datasets")]
    fn concat_empty_panics() {
        let _ = Dataset::concat(&[]);
    }

    #[test]
    fn view_matches_concat_row_for_row() {
        let ds = SyntheticDigits::small().generate(7);
        let a = ds.subset(&[0, 3, 5]);
        let b = ds.subset(&[1, 2]);
        let view = DatasetView::of_parts(vec![&a, &b]);
        assert_eq!(view.len(), 5);
        assert_eq!(view.num_features(), 64);
        assert_eq!(view.num_classes(), 10);
        let materialized = view.materialize();
        assert_eq!(materialized, Dataset::concat(&[&a, &b]));
        for (i, (row, label)) in view.rows().enumerate() {
            assert_eq!(row, materialized.features.row(i));
            assert_eq!(label, materialized.labels[i]);
        }
    }

    #[test]
    fn single_dataset_view_round_trips() {
        let ds = SyntheticDigits::small().generate(8);
        let view = ds.view();
        assert_eq!(view.len(), ds.len());
        assert!(!view.is_empty());
        assert_eq!(view.materialize(), ds);
    }

    #[test]
    #[should_panic(expected = "zero datasets")]
    fn empty_view_panics() {
        let _ = DatasetView::of_parts(vec![]);
    }

    #[test]
    #[should_panic(expected = "class mismatch")]
    fn view_schema_mismatch_panics() {
        let a = Dataset::new(Matrix::zeros(1, 2), vec![0], 3);
        let b = Dataset::new(Matrix::zeros(1, 2), vec![0], 4);
        let _ = DatasetView::of_parts(vec![&a, &b]);
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn out_of_range_label_panics() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "must match labels")]
    fn shape_mismatch_panics() {
        let _ = Dataset::new(Matrix::zeros(2, 2), vec![0], 3);
    }
}
