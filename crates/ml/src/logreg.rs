//! Multinomial (softmax) logistic regression with gradient descent.
//!
//! The paper's local trainer (Sect. V-A2): "We use logistic regression
//! with gradient descent in local train epoch and FedAvg in global train
//! epoch." The model is a single linear layer with bias trained on
//! full-batch cross-entropy; `to_flat`/`from_flat` convert between the
//! matrix form and the flat weight vector that travels through secure
//! aggregation.
//!
//! # Batched execution
//!
//! Training and evaluation run over a [`Design`] — the input features
//! conditioned (fixed 1/16 scale) and bias-extended **once**, in a single
//! gather pass, instead of per call. The epoch loop is three batched
//! kernels with no per-row temporaries: one logits GEMM into a reused
//! buffer ([`Matrix::matmul_into`]), one fused softmax+residual pass in
//! place, and one gradient GEMM ([`Matrix::t_matmul_into`]). Every kernel
//! keeps the `numeric::linalg` determinism contract, so trained weights
//! are bit-identical for any thread count — and bit-identical to the
//! original unfused loop, whose operation order the fused pass preserves
//! exactly.

use numeric::stats::argmax;
use numeric::Matrix;

use crate::dataset::{Dataset, DatasetView};

/// Hyper-parameters for local training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Full-batch epochs per local training call.
    pub epochs: usize,
    /// L2 regularization strength (0 disables).
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 10,
            l2: 1e-4,
        }
    }
}

/// A conditioned design matrix: features scaled and bias-extended, with
/// labels, ready for repeated training or evaluation passes.
///
/// Building a `Design` pays the input conditioning (the fixed 1/16 scale
/// plus the constant bias column) exactly once; every
/// [`LogisticModel::train_design`] epoch and every
/// [`LogisticModel::predict_design`] call then runs straight GEMMs over
/// it. The FL hot paths build one design per dataset — per owner shard,
/// per coalition, and *once* for the test set an accuracy utility
/// evaluates `2^m` models against.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    x: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Design {
    /// Conditions a dataset into a design matrix.
    pub fn new(data: &Dataset) -> Self {
        Self::from_view(&data.view())
    }

    /// Conditions a zero-copy coalition view: one fused gather-scale-bias
    /// pass over the member shards, no intermediate pooled dataset.
    ///
    /// Row order matches `Dataset::concat` over the same parts, so the
    /// trained weights are bit-identical to materializing first.
    ///
    /// # Panics
    ///
    /// Panics if the view is empty.
    pub fn from_view(view: &DatasetView<'_>) -> Self {
        assert!(!view.is_empty(), "cannot train on an empty dataset");
        let features = view.num_features();
        let mut x = Matrix::zeros(view.len(), features + 1);
        let mut labels = Vec::with_capacity(view.len());
        for (r, (row, label)) in view.rows().enumerate() {
            let out = x.row_mut(r);
            for (o, &v) in out[..features].iter_mut().zip(row) {
                *o = v / 16.0;
            }
            out[features] = 1.0;
            labels.push(label);
        }
        Self {
            x,
            labels,
            num_classes: view.num_classes(),
        }
    }

    /// Gathers the rows at `indices` into a new design (used by the
    /// mini-batch trainer: conditioning is inherited, not recomputed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Design {
        let cols = self.x.cols();
        let mut data = Vec::with_capacity(indices.len() * cols);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds ({})", self.len());
            data.extend_from_slice(self.x.row(i));
            labels.push(self.labels[i]);
        }
        Design {
            x: Matrix::from_vec(indices.len(), cols, data),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the design holds no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of raw input features (bias column excluded).
    pub fn num_features(&self) -> usize {
        self.x.cols() - 1
    }

    /// Total number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Labels in row order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

/// A trained softmax-regression model.
///
/// Weight layout: `(features + 1) × classes`, the final row being the
/// bias. Features are standardized by the caller if desired; the digits
/// data is already range-bounded so the trainer uses a fixed 1/16 input
/// scale for conditioning.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    weights: Matrix,
    num_features: usize,
    num_classes: usize,
}

impl LogisticModel {
    /// A zero-initialized model.
    pub fn zeros(num_features: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            weights: Matrix::zeros(num_features + 1, num_classes),
            num_features,
            num_classes,
        }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Immutable weight matrix view (rows = features + bias).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Length of the flat parameter vector.
    pub fn flat_len(&self) -> usize {
        (self.num_features + 1) * self.num_classes
    }

    /// Serializes parameters row-major into a flat vector.
    pub fn to_flat(&self) -> Vec<f64> {
        self.weights.as_slice().to_vec()
    }

    /// Rebuilds a model from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `(features+1) * classes`.
    pub fn from_flat(flat: &[f64], num_features: usize, num_classes: usize) -> Self {
        assert_eq!(
            flat.len(),
            (num_features + 1) * num_classes,
            "flat vector length {} does not match ({num_features}+1)x{num_classes}",
            flat.len()
        );
        Self {
            weights: Matrix::from_vec(num_features + 1, num_classes, flat.to_vec()),
            num_features,
            num_classes,
        }
    }

    /// Class-probability matrix for `features` (one row per example).
    ///
    /// Conditions the input on every call; evaluation loops that hit the
    /// same data repeatedly should build a [`Design`] once and use
    /// [`LogisticModel::predict_proba_design`].
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        assert_eq!(
            features.cols(),
            self.num_features,
            "feature count mismatch: model {}, input {}",
            self.num_features,
            features.cols()
        );
        let x = scaled_with_bias(features);
        let mut logits = x.matmul(&self.weights);
        softmax_rows_in_place(&mut logits);
        logits
    }

    /// Class-probability matrix over a prepared design (no conditioning
    /// pass: one GEMM plus the in-place softmax).
    pub fn predict_proba_design(&self, design: &Design) -> Matrix {
        assert_eq!(
            design.num_features(),
            self.num_features,
            "feature count mismatch: model {}, design {}",
            self.num_features,
            design.num_features()
        );
        let mut logits = design.x.matmul(&self.weights);
        softmax_rows_in_place(&mut logits);
        logits
    }

    /// Hard label predictions.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let proba = self.predict_proba(features);
        argmax_rows(&proba)
    }

    /// Hard label predictions over a prepared design.
    pub fn predict_design(&self, design: &Design) -> Vec<usize> {
        let proba = self.predict_proba_design(design);
        argmax_rows(&proba)
    }

    /// Trains in place on `data` for `config.epochs` full-batch steps.
    pub fn train(&mut self, data: &Dataset, config: &TrainConfig) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let design = Design::new(data);
        self.train_design(&design, config);
    }

    /// Trains in place over a prepared design — the batched epoch loop
    /// every trainer entry point funnels through.
    ///
    /// Per epoch: one logits GEMM into a reused buffer, one fused
    /// softmax+residual pass in place (`P − Y` without materializing the
    /// one-hot labels), one gradient GEMM into a reused buffer, then the
    /// L2 and step AXPYs. No per-row or per-epoch allocations.
    ///
    /// # Panics
    ///
    /// Panics on an empty design or class/feature-count mismatch.
    pub fn train_design(&mut self, design: &Design, config: &TrainConfig) {
        assert!(!design.is_empty(), "cannot train on an empty dataset");
        assert_eq!(design.num_classes, self.num_classes, "class count mismatch");
        assert_eq!(
            design.num_features(),
            self.num_features,
            "feature count mismatch: model {}, design {}",
            self.num_features,
            design.num_features()
        );
        let x = &design.x;
        let n = design.len() as f64;
        let mut logits = Matrix::zeros(design.len(), self.num_classes);
        let mut grad = Matrix::zeros(self.num_features + 1, self.num_classes);

        for _ in 0..config.epochs {
            x.matmul_into(&self.weights, &mut logits);
            softmax_residual_in_place(&mut logits, &design.labels); // P − Y
            x.t_matmul_into(&logits, &mut grad);
            grad.scale(1.0 / n);
            if config.l2 > 0.0 {
                grad.axpy(config.l2, &self.weights);
            }
            self.weights.axpy(-config.learning_rate, &grad);
        }
    }

    /// Warm start: builds a model from the flat `global` weights and
    /// trains it on `design` — one FL round's local update without
    /// re-deriving the conditioned design (the caller keeps it across
    /// rounds) and without an intermediate zero model.
    pub fn train_from(global: &[f64], design: &Design, config: &TrainConfig) -> Self {
        let mut model = Self::from_flat(global, design.num_features(), design.num_classes);
        model.train_design(design, config);
        model
    }

    /// Cross-entropy loss on `data` (mean negative log-likelihood).
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        let proba = self.predict_proba(&data.features);
        let eps = 1e-12;
        let total: f64 = data
            .labels
            .iter()
            .enumerate()
            .map(|(i, &l)| -(proba[(i, l)].max(eps)).ln())
            .sum();
        total / data.len() as f64
    }
}

/// Trains a fresh model on `data`.
pub fn train_model(data: &Dataset, config: &TrainConfig) -> LogisticModel {
    let mut model = LogisticModel::zeros(data.num_features(), data.num_classes);
    model.train(data, config);
    model
}

/// Trains a fresh model over a prepared design.
pub fn train_model_design(design: &Design, config: &TrainConfig) -> LogisticModel {
    let mut model = LogisticModel::zeros(design.num_features(), design.num_classes());
    model.train_design(design, config);
    model
}

/// Input conditioning: scale bitmap counts (0–16) towards unit range and
/// append the bias column. A fixed constant keeps the transformation
/// identical on every owner without sharing statistics.
fn scaled_with_bias(features: &Matrix) -> Matrix {
    features.map(|v| v / 16.0).with_bias_column()
}

/// Row-wise argmax over a probability matrix.
fn argmax_rows(proba: &Matrix) -> Vec<usize> {
    (0..proba.rows())
        .map(|r| argmax(proba.row(r)).expect("non-empty probability row"))
        .collect()
}

/// Row-wise numerically-stable softmax, in place, no temporaries.
///
/// Operation order per element matches the original out-of-place
/// version — `(v − max).exp()`, then a division by the row sum — so the
/// probabilities are bit-identical to the unfused pipeline.
fn softmax_rows_in_place(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Fused softmax + residual: turns a logits matrix into `P − Y` in one
/// pass, subtracting the one-hot label directly instead of materializing
/// `Y` and AXPY-ing it (`p − 1.0` is the identical float operation).
fn softmax_residual_in_place(logits: &mut Matrix, labels: &[usize]) {
    debug_assert_eq!(logits.rows(), labels.len());
    softmax_rows_in_place(logits);
    for (r, &label) in labels.iter().enumerate() {
        logits.row_mut(r)[label] -= 1.0;
    }
}

/// Row-wise numerically-stable softmax (out of place).
#[cfg(test)]
fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_in_place(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;
    use crate::metrics::accuracy;
    use crate::split::train_test_split;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            learning_rate: 0.5,
            epochs: 60,
            l2: 1e-4,
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, 999.0]);
        let p = softmax_rows(&logits);
        assert!(p[(0, 0)].is_finite() && p[(0, 1)].is_finite());
        assert!(p[(0, 0)] > p[(0, 1)]);
    }

    #[test]
    fn zero_model_predicts_uniform() {
        let model = LogisticModel::zeros(4, 5);
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let p = model.predict_proba(&x);
        for c in 0..5 {
            assert!((p[(0, c)] - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_round_trip() {
        let mut model = LogisticModel::zeros(3, 4);
        model.weights[(0, 0)] = 1.5;
        model.weights[(3, 3)] = -2.5;
        let flat = model.to_flat();
        assert_eq!(flat.len(), 16);
        let back = LogisticModel::from_flat(&flat, 3, 4);
        assert_eq!(back, model);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_flat_bad_length_panics() {
        let _ = LogisticModel::from_flat(&[0.0; 5], 3, 4);
    }

    #[test]
    fn training_reduces_loss() {
        let ds = SyntheticDigits::small().generate(1);
        let mut model = LogisticModel::zeros(ds.num_features(), ds.num_classes);
        let before = model.log_loss(&ds);
        model.train(&ds, &quick_config());
        let after = model.log_loss(&ds);
        assert!(
            after < before * 0.8,
            "loss should drop substantially: {before} -> {after}"
        );
    }

    #[test]
    fn learns_separable_digits() {
        let ds = SyntheticDigits::small().generate(2);
        let split = train_test_split(&ds, 0.8, 3);
        let model = train_model(&split.train, &quick_config());
        let preds = model.predict(&split.test.features);
        let acc = accuracy(&preds, &split.test.labels);
        assert!(acc > 0.9, "synthetic digits should be learnable, got {acc}");
    }

    #[test]
    fn training_deterministic() {
        let ds = SyntheticDigits::small().generate(4);
        let a = train_model(&ds, &quick_config());
        let b = train_model(&ds, &quick_config());
        assert_eq!(a, b, "full-batch GD from zeros is deterministic");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let ds = SyntheticDigits::small().generate(1);
        let empty = ds.subset(&[]);
        let mut model = LogisticModel::zeros(64, 10);
        model.train(&empty, &quick_config());
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = SyntheticDigits::small().generate(5);
        let no_reg = train_model(
            &ds,
            &TrainConfig {
                l2: 0.0,
                ..quick_config()
            },
        );
        let reg = train_model(
            &ds,
            &TrainConfig {
                l2: 0.5,
                ..quick_config()
            },
        );
        assert!(
            reg.weights().frobenius_norm() < no_reg.weights().frobenius_norm(),
            "L2 must shrink the weight norm"
        );
    }

    #[test]
    fn design_training_is_bit_identical_to_dataset_training() {
        let ds = SyntheticDigits::small().generate(7);
        let via_dataset = train_model(&ds, &quick_config());
        let design = Design::new(&ds);
        let via_design = train_model_design(&design, &quick_config());
        assert_eq!(via_dataset, via_design);
        // Prediction paths agree too.
        assert_eq!(
            via_dataset.predict(&ds.features),
            via_design.predict_design(&design)
        );
        assert_eq!(
            via_dataset.predict_proba(&ds.features),
            via_design.predict_proba_design(&design)
        );
    }

    #[test]
    fn coalition_view_trains_like_materialized_concat() {
        use crate::dataset::{Dataset, DatasetView};
        let ds = SyntheticDigits::small().generate(9);
        let a = ds.subset(&(0..200).collect::<Vec<_>>());
        let b = ds.subset(&(200..450).collect::<Vec<_>>());
        let view = DatasetView::of_parts(vec![&a, &b]);
        let via_view = train_model_design(&Design::from_view(&view), &quick_config());
        let pooled = Dataset::concat(&[&a, &b]);
        let via_concat = train_model(&pooled, &quick_config());
        assert_eq!(via_view, via_concat, "zero-copy view must not change bits");
    }

    #[test]
    fn train_from_warm_starts_from_global_weights() {
        let ds = SyntheticDigits::small().generate(10);
        let design = Design::new(&ds);
        let global = train_model_design(
            &design,
            &TrainConfig {
                epochs: 5,
                ..quick_config()
            },
        );
        let warm = LogisticModel::train_from(
            &global.to_flat(),
            &design,
            &TrainConfig {
                epochs: 20,
                ..quick_config()
            },
        );
        // Identical to the long-hand from_flat + train path.
        let mut long_hand =
            LogisticModel::from_flat(&global.to_flat(), ds.num_features(), ds.num_classes);
        long_hand.train(
            &ds,
            &TrainConfig {
                epochs: 20,
                ..quick_config()
            },
        );
        assert_eq!(warm, long_hand);
    }

    #[test]
    fn design_gather_matches_subset_conditioning() {
        let ds = SyntheticDigits::small().generate(11);
        let design = Design::new(&ds);
        let indices = [5usize, 0, 17, 42];
        let gathered = design.gather(&indices);
        assert_eq!(gathered, Design::new(&ds.subset(&indices)));
        assert_eq!(gathered.len(), 4);
        assert_eq!(gathered.labels()[1], ds.labels[0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn design_gather_out_of_bounds_panics() {
        let ds = SyntheticDigits::small().generate(11);
        let _ = Design::new(&ds).gather(&[100_000]);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn design_feature_mismatch_panics() {
        let ds = SyntheticDigits::small().generate(12);
        let design = Design::new(&ds);
        let mut model = LogisticModel::zeros(32, 10);
        model.train_design(&design, &quick_config());
    }

    #[test]
    fn continued_training_from_flat_improves() {
        // Simulates the FL pattern: download global weights, train locally.
        let ds = SyntheticDigits::small().generate(6);
        let mut global = LogisticModel::zeros(ds.num_features(), ds.num_classes);
        global.train(
            &ds,
            &TrainConfig {
                epochs: 5,
                ..quick_config()
            },
        );
        let mut local =
            LogisticModel::from_flat(&global.to_flat(), ds.num_features(), ds.num_classes);
        let before = local.log_loss(&ds);
        local.train(
            &ds,
            &TrainConfig {
                epochs: 20,
                ..quick_config()
            },
        );
        assert!(local.log_loss(&ds) < before);
    }
}
