//! Multinomial (softmax) logistic regression with gradient descent.
//!
//! The paper's local trainer (Sect. V-A2): "We use logistic regression
//! with gradient descent in local train epoch and FedAvg in global train
//! epoch." The model is a single linear layer with bias trained on
//! full-batch cross-entropy; `to_flat`/`from_flat` convert between the
//! matrix form and the flat weight vector that travels through secure
//! aggregation.

use numeric::stats::argmax;
use numeric::Matrix;

use crate::dataset::Dataset;

/// Hyper-parameters for local training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Full-batch epochs per local training call.
    pub epochs: usize,
    /// L2 regularization strength (0 disables).
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            epochs: 10,
            l2: 1e-4,
        }
    }
}

/// A trained softmax-regression model.
///
/// Weight layout: `(features + 1) × classes`, the final row being the
/// bias. Features are standardized by the caller if desired; the digits
/// data is already range-bounded so the trainer uses a fixed 1/16 input
/// scale for conditioning.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    weights: Matrix,
    num_features: usize,
    num_classes: usize,
}

impl LogisticModel {
    /// A zero-initialized model.
    pub fn zeros(num_features: usize, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            weights: Matrix::zeros(num_features + 1, num_classes),
            num_features,
            num_classes,
        }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Immutable weight matrix view (rows = features + bias).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Length of the flat parameter vector.
    pub fn flat_len(&self) -> usize {
        (self.num_features + 1) * self.num_classes
    }

    /// Serializes parameters row-major into a flat vector.
    pub fn to_flat(&self) -> Vec<f64> {
        self.weights.as_slice().to_vec()
    }

    /// Rebuilds a model from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match `(features+1) * classes`.
    pub fn from_flat(flat: &[f64], num_features: usize, num_classes: usize) -> Self {
        assert_eq!(
            flat.len(),
            (num_features + 1) * num_classes,
            "flat vector length {} does not match ({num_features}+1)x{num_classes}",
            flat.len()
        );
        Self {
            weights: Matrix::from_vec(num_features + 1, num_classes, flat.to_vec()),
            num_features,
            num_classes,
        }
    }

    /// Class-probability matrix for `features` (one row per example).
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        assert_eq!(
            features.cols(),
            self.num_features,
            "feature count mismatch: model {}, input {}",
            self.num_features,
            features.cols()
        );
        let x = scaled_with_bias(features);
        let logits = x.matmul(&self.weights);
        softmax_rows(&logits)
    }

    /// Hard label predictions.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let proba = self.predict_proba(features);
        (0..proba.rows())
            .map(|r| argmax(proba.row(r)).expect("non-empty probability row"))
            .collect()
    }

    /// Trains in place on `data` for `config.epochs` full-batch steps.
    pub fn train(&mut self, data: &Dataset, config: &TrainConfig) {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert_eq!(data.num_classes, self.num_classes, "class count mismatch");
        let x = scaled_with_bias(&data.features);
        let n = data.len() as f64;

        // One-hot label matrix.
        let mut y = Matrix::zeros(data.len(), self.num_classes);
        for (i, &label) in data.labels.iter().enumerate() {
            y[(i, label)] = 1.0;
        }

        for _ in 0..config.epochs {
            let logits = x.matmul(&self.weights);
            let mut residual = softmax_rows(&logits);
            residual.axpy(-1.0, &y); // P − Y
            let mut grad = x.t_matmul(&residual);
            grad.scale(1.0 / n);
            if config.l2 > 0.0 {
                grad.axpy(config.l2, &self.weights);
            }
            self.weights.axpy(-config.learning_rate, &grad);
        }
    }

    /// Cross-entropy loss on `data` (mean negative log-likelihood).
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        let proba = self.predict_proba(&data.features);
        let eps = 1e-12;
        let total: f64 = data
            .labels
            .iter()
            .enumerate()
            .map(|(i, &l)| -(proba[(i, l)].max(eps)).ln())
            .sum();
        total / data.len() as f64
    }
}

/// Trains a fresh model on `data`.
pub fn train_model(data: &Dataset, config: &TrainConfig) -> LogisticModel {
    let mut model = LogisticModel::zeros(data.num_features(), data.num_classes);
    model.train(data, config);
    model
}

/// Input conditioning: scale bitmap counts (0–16) towards unit range and
/// append the bias column. A fixed constant keeps the transformation
/// identical on every owner without sharing statistics.
fn scaled_with_bias(features: &Matrix) -> Matrix {
    features.map(|v| v / 16.0).with_bias_column()
}

/// Row-wise numerically-stable softmax.
fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f64 = exp.iter().sum();
        let out_row = out.row_mut(r);
        for (o, e) in out_row.iter_mut().zip(&exp) {
            *o = e / sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;
    use crate::metrics::accuracy;
    use crate::split::train_test_split;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            learning_rate: 0.5,
            epochs: 60,
            l2: 1e-4,
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_huge_logits() {
        let logits = Matrix::from_vec(1, 2, vec![1000.0, 999.0]);
        let p = softmax_rows(&logits);
        assert!(p[(0, 0)].is_finite() && p[(0, 1)].is_finite());
        assert!(p[(0, 0)] > p[(0, 1)]);
    }

    #[test]
    fn zero_model_predicts_uniform() {
        let model = LogisticModel::zeros(4, 5);
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let p = model.predict_proba(&x);
        for c in 0..5 {
            assert!((p[(0, c)] - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_round_trip() {
        let mut model = LogisticModel::zeros(3, 4);
        model.weights[(0, 0)] = 1.5;
        model.weights[(3, 3)] = -2.5;
        let flat = model.to_flat();
        assert_eq!(flat.len(), 16);
        let back = LogisticModel::from_flat(&flat, 3, 4);
        assert_eq!(back, model);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_flat_bad_length_panics() {
        let _ = LogisticModel::from_flat(&[0.0; 5], 3, 4);
    }

    #[test]
    fn training_reduces_loss() {
        let ds = SyntheticDigits::small().generate(1);
        let mut model = LogisticModel::zeros(ds.num_features(), ds.num_classes);
        let before = model.log_loss(&ds);
        model.train(&ds, &quick_config());
        let after = model.log_loss(&ds);
        assert!(
            after < before * 0.8,
            "loss should drop substantially: {before} -> {after}"
        );
    }

    #[test]
    fn learns_separable_digits() {
        let ds = SyntheticDigits::small().generate(2);
        let split = train_test_split(&ds, 0.8, 3);
        let model = train_model(&split.train, &quick_config());
        let preds = model.predict(&split.test.features);
        let acc = accuracy(&preds, &split.test.labels);
        assert!(acc > 0.9, "synthetic digits should be learnable, got {acc}");
    }

    #[test]
    fn training_deterministic() {
        let ds = SyntheticDigits::small().generate(4);
        let a = train_model(&ds, &quick_config());
        let b = train_model(&ds, &quick_config());
        assert_eq!(a, b, "full-batch GD from zeros is deterministic");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let ds = SyntheticDigits::small().generate(1);
        let empty = ds.subset(&[]);
        let mut model = LogisticModel::zeros(64, 10);
        model.train(&empty, &quick_config());
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = SyntheticDigits::small().generate(5);
        let no_reg = train_model(
            &ds,
            &TrainConfig {
                l2: 0.0,
                ..quick_config()
            },
        );
        let reg = train_model(
            &ds,
            &TrainConfig {
                l2: 0.5,
                ..quick_config()
            },
        );
        assert!(
            reg.weights().frobenius_norm() < no_reg.weights().frobenius_norm(),
            "L2 must shrink the weight norm"
        );
    }

    #[test]
    fn continued_training_from_flat_improves() {
        // Simulates the FL pattern: download global weights, train locally.
        let ds = SyntheticDigits::small().generate(6);
        let mut global = LogisticModel::zeros(ds.num_features(), ds.num_classes);
        global.train(
            &ds,
            &TrainConfig {
                epochs: 5,
                ..quick_config()
            },
        );
        let mut local =
            LogisticModel::from_flat(&global.to_flat(), ds.num_features(), ds.num_classes);
        let before = local.log_loss(&ds);
        local.train(
            &ds,
            &TrainConfig {
                epochs: 20,
                ..quick_config()
            },
        );
        assert!(local.log_loss(&ds) < before);
    }
}
