//! Train/test splitting and per-owner sharding.
//!
//! Paper Sect. V-A1: "We randomly split the dataset into a training
//! dataset and a testing dataset with a ratio of 8:2 and randomly split
//! the training dataset into 9 subsets to simulate 9 data owners."

use crate::dataset::Dataset;
use crate::rng::Xoshiro256;

/// A train/test partition.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training portion.
    pub train: Dataset,
    /// Held-out test portion (the utility function evaluates on this).
    pub test: Dataset,
}

/// Randomly splits `dataset` with `train_fraction` going to training.
///
/// # Panics
///
/// Panics unless `0 < train_fraction < 1` and both sides end up
/// non-empty.
pub fn train_test_split(dataset: &Dataset, train_fraction: f64, seed: u64) -> TrainTestSplit {
    assert!(
        (0.0..1.0).contains(&train_fraction) && train_fraction > 0.0,
        "train_fraction must be in (0, 1), got {train_fraction}"
    );
    let n = dataset.len();
    let n_train = ((n as f64) * train_fraction).round() as usize;
    assert!(
        n_train > 0 && n_train < n,
        "split produced an empty side (n={n}, train={n_train})"
    );
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    rng.shuffle(&mut order);
    TrainTestSplit {
        train: dataset.subset(&order[..n_train]),
        test: dataset.subset(&order[n_train..]),
    }
}

/// Splits `dataset` into `owners` near-equal shards after a seeded
/// shuffle. The first `len % owners` shards receive one extra example.
///
/// # Panics
///
/// Panics if `owners == 0` or `owners > dataset.len()`.
pub fn shard_for_owners(dataset: &Dataset, owners: usize, seed: u64) -> Vec<Dataset> {
    assert!(owners > 0, "need at least one owner");
    assert!(
        owners <= dataset.len(),
        "more owners ({owners}) than examples ({})",
        dataset.len()
    );
    let n = dataset.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    rng.shuffle(&mut order);

    let base = n / owners;
    let extra = n % owners;
    let mut shards = Vec::with_capacity(owners);
    let mut offset = 0;
    for i in 0..owners {
        let size = base + usize::from(i < extra);
        shards.push(dataset.subset(&order[offset..offset + size]));
        offset += size;
    }
    debug_assert_eq!(offset, n);
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDigits;

    fn data() -> Dataset {
        SyntheticDigits::small().generate(1)
    }

    #[test]
    fn split_ratio_respected() {
        let ds = data();
        let split = train_test_split(&ds, 0.8, 42);
        assert_eq!(split.train.len(), 480);
        assert_eq!(split.test.len(), 120);
    }

    #[test]
    fn split_is_partition() {
        let ds = data();
        let split = train_test_split(&ds, 0.8, 42);
        assert_eq!(split.train.len() + split.test.len(), ds.len());
        // No example in both sides: compare row contents via a simple sum
        // signature (features are continuous, collisions implausible).
        let sig = |d: &Dataset| -> Vec<u64> {
            (0..d.len())
                .map(|i| {
                    d.features
                        .row(i)
                        .iter()
                        .map(|v| v.to_bits())
                        .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b))
                })
                .collect()
        };
        let train_sigs = sig(&split.train);
        let test_sigs = sig(&split.test);
        for t in &test_sigs {
            assert!(!train_sigs.contains(t), "example leaked across the split");
        }
    }

    #[test]
    fn split_deterministic() {
        let ds = data();
        let a = train_test_split(&ds, 0.8, 7);
        let b = train_test_split(&ds, 0.8, 7);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
        let c = train_test_split(&ds, 0.8, 8);
        assert_ne!(a.train, c.train);
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn bad_fraction_panics() {
        let _ = train_test_split(&data(), 1.5, 0);
    }

    #[test]
    fn shards_cover_everything() {
        let ds = data();
        let shards = shard_for_owners(&ds, 9, 3);
        assert_eq!(shards.len(), 9);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, ds.len());
        // Sizes differ by at most one.
        let min = shards.iter().map(Dataset::len).min().unwrap();
        let max = shards.iter().map(Dataset::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn shard_deterministic() {
        let ds = data();
        assert_eq!(
            shard_for_owners(&ds, 5, 9)[2],
            shard_for_owners(&ds, 5, 9)[2]
        );
    }

    #[test]
    #[should_panic(expected = "at least one owner")]
    fn zero_owners_panics() {
        let _ = shard_for_owners(&data(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "more owners")]
    fn too_many_owners_panics() {
        let small = data().subset(&[0, 1, 2]);
        let _ = shard_for_owners(&small, 10, 0);
    }
}
