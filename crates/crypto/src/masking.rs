//! Pairwise mask derivation for secure aggregation.
//!
//! Paper Sect. IV-A1: at round `r`, the pair `(i, j)` expands
//! `PRNG(g^{ij}, r)` into a mask vector `m^r_{ij}`. The *orientation
//! convention* makes cancellation work: the numerically smaller party id
//! **adds** the mask and the larger one **subtracts** it, so the sum over
//! all parties telescopes to zero. Both parties derive the identical mask
//! because they feed the same pair key and round into the PRG.

use crate::chacha::ChaChaPrg;
use crate::hkdf;

/// Identifies a data owner inside one secure-aggregation session.
pub type PartyId = u32;

/// Derives per-round pairwise masks from a 32-byte pair key.
#[derive(Debug, Clone)]
pub struct PairwiseMasker {
    pair_key: [u8; 32],
}

impl PairwiseMasker {
    /// Wraps the shared pair key `KDF(g^{ij})` of one pair of parties.
    pub fn new(pair_key: [u8; 32]) -> Self {
        Self { pair_key }
    }

    /// Expands the mask vector for `round` with `dim` ring elements.
    ///
    /// Deterministic: both parties (and every re-executing miner in
    /// possession of the pair key — which miners are *not*) compute the
    /// same vector.
    pub fn mask_for_round(&self, round: u64, dim: usize) -> Vec<u64> {
        let mut seed = [0u8; 32];
        let info = round_info(round);
        let okm = hkdf::derive(b"transparent-fl/mask-seed", &self.pair_key, &info, 32);
        seed.copy_from_slice(&okm);
        let mut prg = ChaChaPrg::from_seed(&seed);
        prg.gen_u64_vec(dim)
    }

    /// Applies the pair `(me, other)`'s mask for `round` to `update` in
    /// place, using the canonical orientation: the smaller id adds, the
    /// larger subtracts.
    ///
    /// # Panics
    ///
    /// Panics if `me == other` — a party has no pairwise mask with itself.
    pub fn apply(&self, me: PartyId, other: PartyId, round: u64, update: &mut [u64]) {
        let mask = self.mask_for_round(round, update.len());
        apply_expanded(me, other, &mask, update);
    }
}

/// Applies an already-expanded mask with the canonical orientation (the
/// smaller id adds, the larger subtracts). Split out so callers that
/// expand several pair masks in parallel can fold them without
/// re-deriving the orientation rule.
///
/// # Panics
///
/// Panics if `me == other` — a party has no pairwise mask with itself.
pub fn apply_expanded(me: PartyId, other: PartyId, mask: &[u64], update: &mut [u64]) {
    assert_ne!(me, other, "no pairwise mask with self");
    if me < other {
        for (u, m) in update.iter_mut().zip(mask) {
            *u = u.wrapping_add(*m);
        }
    } else {
        for (u, m) in update.iter_mut().zip(mask) {
            *u = u.wrapping_sub(*m);
        }
    }
}

/// Domain-separated info string for a round.
fn round_info(round: u64) -> [u8; 16] {
    let mut info = [0u8; 16];
    info[..8].copy_from_slice(b"round/v1");
    info[8..].copy_from_slice(&round.to_be_bytes());
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn masker(tag: u8) -> PairwiseMasker {
        PairwiseMasker::new([tag; 32])
    }

    #[test]
    fn same_key_same_round_same_mask() {
        let a = masker(1).mask_for_round(3, 10);
        let b = masker(1).mask_for_round(3, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn different_rounds_different_masks() {
        let a = masker(1).mask_for_round(0, 10);
        let b = masker(1).mask_for_round(1, 10);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_different_masks() {
        assert_ne!(
            masker(1).mask_for_round(0, 10),
            masker(2).mask_for_round(0, 10)
        );
    }

    #[test]
    fn mask_length_matches_dim() {
        assert_eq!(masker(1).mask_for_round(0, 0).len(), 0);
        assert_eq!(masker(1).mask_for_round(0, 1000).len(), 1000);
    }

    #[test]
    fn pair_orientation_cancels() {
        let m = masker(7);
        let mut ua = vec![100u64, 200, 300];
        let mut ub = vec![1u64, 2, 3];
        m.apply(0, 1, 5, &mut ua); // party 0 adds
        m.apply(1, 0, 5, &mut ub); // party 1 subtracts
        let sum: Vec<u64> = ua
            .iter()
            .zip(&ub)
            .map(|(a, b)| a.wrapping_add(*b))
            .collect();
        assert_eq!(sum, vec![101, 202, 303]);
    }

    #[test]
    #[should_panic(expected = "self")]
    fn self_mask_panics() {
        let mut u = vec![0u64];
        masker(1).apply(3, 3, 0, &mut u);
    }

    #[test]
    fn masked_value_hides_plaintext() {
        // A single masked coordinate should look nothing like the input.
        let m = masker(9);
        let mut u = vec![42u64];
        m.apply(0, 1, 0, &mut u);
        assert_ne!(u[0], 42);
    }

    proptest! {
        #[test]
        fn prop_three_party_telescoping(
            w in proptest::collection::vec(any::<u64>(), 1..32),
            round in any::<u64>(),
        ) {
            // Parties 0,1,2 with independent pair keys; masks must vanish
            // from the ring sum for arbitrary updates.
            let m01 = masker(1);
            let m02 = masker(2);
            let m12 = masker(3);
            let dim = w.len();
            let mut u0 = w.clone();
            let mut u1 = w.clone();
            let mut u2 = w.clone();
            m01.apply(0, 1, round, &mut u0);
            m02.apply(0, 2, round, &mut u0);
            m01.apply(1, 0, round, &mut u1);
            m12.apply(1, 2, round, &mut u1);
            m02.apply(2, 0, round, &mut u2);
            m12.apply(2, 1, round, &mut u2);
            for k in 0..dim {
                let total = u0[k].wrapping_add(u1[k]).wrapping_add(u2[k]);
                prop_assert_eq!(total, w[k].wrapping_mul(3));
            }
        }
    }
}
