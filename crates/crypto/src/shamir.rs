//! Shamir secret sharing over a 256-bit prime field.
//!
//! The paper assumes every data owner participates in every round
//! (Sect. III), so mask recovery is never needed. The full Bonawitz
//! protocol, however, secret-shares each party's key material so the
//! cohort can unmask the aggregate when a party drops out mid-round. We
//! implement that extension here: it is exercised by the dropout-recovery
//! tests and documented in DESIGN.md as an optional feature beyond the
//! paper's scope.
//!
//! Shares are points `(x, P(x))` of a random degree `t-1` polynomial over
//! `GF(p)` with `P(0) = secret`; any `t` shares reconstruct via Lagrange
//! interpolation, fewer reveal nothing (information-theoretically).

use numeric::U256;

use crate::chacha::ChaChaPrg;

/// A single share: the evaluation point `x` (nonzero) and value `y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Evaluation point, `1..=n`.
    pub x: u64,
    /// Polynomial value at `x`.
    pub y: U256,
}

/// Errors from sharing or reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShamirError {
    /// Threshold must satisfy `1 <= t <= n`.
    BadThreshold {
        /// Requested threshold.
        threshold: usize,
        /// Number of shares.
        shares: usize,
    },
    /// Reconstruction received fewer shares than the threshold.
    NotEnoughShares {
        /// Shares provided.
        got: usize,
        /// Threshold required.
        need: usize,
    },
    /// Two shares used the same evaluation point.
    DuplicatePoint(u64),
    /// A share claimed the evaluation point `x = 0` — that point *is*
    /// the secret, so honest dealers never emit it and reconstruction
    /// rejects it outright.
    ZeroPoint,
    /// The secret is not a field element (>= p).
    SecretOutOfField,
}

impl std::fmt::Display for ShamirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadThreshold { threshold, shares } => {
                write!(f, "threshold {threshold} invalid for {shares} shares")
            }
            Self::NotEnoughShares { got, need } => {
                write!(f, "need {need} shares to reconstruct, got {got}")
            }
            Self::DuplicatePoint(x) => write!(f, "duplicate share point {x}"),
            Self::ZeroPoint => write!(f, "share evaluation point x = 0 is forbidden"),
            Self::SecretOutOfField => write!(f, "secret exceeds the field modulus"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// Shamir scheme over `GF(p)` for a fixed prime `p`.
#[derive(Debug, Clone)]
pub struct Shamir {
    p: U256,
}

impl Default for Shamir {
    fn default() -> Self {
        Self::new_simulation_field()
    }
}

impl Shamir {
    /// Field `GF(p)` with the same 256-bit prime the DH simulation group
    /// uses (secp256k1's field prime).
    pub fn new_simulation_field() -> Self {
        let p = U256::from_hex("FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F")
            .expect("static prime parses");
        Self { p }
    }

    /// Splits `secret` into `n` shares with reconstruction threshold `t`.
    ///
    /// Coefficients are drawn from `prg`, so sharing is deterministic per
    /// seed — a requirement for the re-execution verification story.
    pub fn split(
        &self,
        secret: &U256,
        threshold: usize,
        n: usize,
        prg: &mut ChaChaPrg,
    ) -> Result<Vec<Share>, ShamirError> {
        if threshold == 0 || threshold > n {
            return Err(ShamirError::BadThreshold {
                threshold,
                shares: n,
            });
        }
        if secret >= &self.p {
            return Err(ShamirError::SecretOutOfField);
        }
        // coefficients[0] = secret, rest uniform in the field.
        let mut coeffs = Vec::with_capacity(threshold);
        coeffs.push(*secret);
        for _ in 1..threshold {
            coeffs.push(self.random_element(prg));
        }
        let shares = (1..=n as u64)
            .map(|x| Share {
                x,
                y: self.eval_poly(&coeffs, x),
            })
            .collect();
        Ok(shares)
    }

    /// Reconstructs the secret from at least `threshold` shares via
    /// Lagrange interpolation at zero.
    pub fn reconstruct(&self, shares: &[Share], threshold: usize) -> Result<U256, ShamirError> {
        if shares.len() < threshold {
            return Err(ShamirError::NotEnoughShares {
                got: shares.len(),
                need: threshold,
            });
        }
        let used = &shares[..threshold];
        for (i, s) in used.iter().enumerate() {
            if s.x == 0 {
                return Err(ShamirError::ZeroPoint);
            }
            if used[..i].iter().any(|o| o.x == s.x) {
                return Err(ShamirError::DuplicatePoint(s.x));
            }
        }
        let p = &self.p;
        let mut secret = U256::ZERO;
        for (j, sj) in used.iter().enumerate() {
            // L_j(0) = Π_{k≠j} x_k / (x_k - x_j)
            let mut num = U256::ONE;
            let mut den = U256::ONE;
            let xj = U256::from_u64(sj.x).reduce(p);
            for (k, sk) in used.iter().enumerate() {
                if k == j {
                    continue;
                }
                let xk = U256::from_u64(sk.x).reduce(p);
                num = num.mod_mul(&xk, p);
                den = den.mod_mul(&xk.mod_sub(&xj, p), p);
            }
            let lj = num.mod_mul(
                &den.mod_inv_prime(p)
                    .expect("den nonzero for distinct points"),
                p,
            );
            secret = secret.mod_add(&sj.y.mod_mul(&lj, p), p);
        }
        Ok(secret)
    }

    fn eval_poly(&self, coeffs: &[U256], x: u64) -> U256 {
        // Horner's rule in GF(p).
        let xf = U256::from_u64(x).reduce(&self.p);
        let mut acc = U256::ZERO;
        for c in coeffs.iter().rev() {
            acc = acc
                .mod_mul(&xf, &self.p)
                .mod_add(&c.reduce(&self.p), &self.p);
        }
        acc
    }

    fn random_element(&self, prg: &mut ChaChaPrg) -> U256 {
        loop {
            let mut bytes = [0u8; 32];
            prg.fill_bytes(&mut bytes);
            let candidate = U256::from_be_bytes(&bytes);
            if candidate < self.p {
                return candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn prg(tag: u8) -> ChaChaPrg {
        ChaChaPrg::from_seed(&[tag; 32])
    }

    #[test]
    fn split_and_reconstruct() {
        let s = Shamir::default();
        let secret = U256::from_u64(0xdead_beef);
        let shares = s.split(&secret, 3, 5, &mut prg(1)).unwrap();
        assert_eq!(shares.len(), 5);
        assert_eq!(s.reconstruct(&shares[..3], 3).unwrap(), secret);
        // Any 3-of-5 subset works.
        let subset = [shares[4].clone(), shares[1].clone(), shares[3].clone()];
        assert_eq!(s.reconstruct(&subset, 3).unwrap(), secret);
    }

    #[test]
    fn below_threshold_fails() {
        let s = Shamir::default();
        let shares = s.split(&U256::from_u64(7), 3, 5, &mut prg(1)).unwrap();
        assert_eq!(
            s.reconstruct(&shares[..2], 3).unwrap_err(),
            ShamirError::NotEnoughShares { got: 2, need: 3 }
        );
    }

    #[test]
    fn threshold_one_is_copy() {
        let s = Shamir::default();
        let secret = U256::from_u64(42);
        let shares = s.split(&secret, 1, 3, &mut prg(2)).unwrap();
        for share in &shares {
            assert_eq!(share.y, secret, "degree-0 polynomial is constant");
        }
    }

    #[test]
    fn full_threshold() {
        let s = Shamir::default();
        let secret = U256::from_u64(99);
        let shares = s.split(&secret, 5, 5, &mut prg(3)).unwrap();
        assert_eq!(s.reconstruct(&shares, 5).unwrap(), secret);
    }

    #[test]
    fn bad_threshold_rejected() {
        let s = Shamir::default();
        let secret = U256::from_u64(1);
        assert!(matches!(
            s.split(&secret, 0, 5, &mut prg(1)),
            Err(ShamirError::BadThreshold { .. })
        ));
        assert!(matches!(
            s.split(&secret, 6, 5, &mut prg(1)),
            Err(ShamirError::BadThreshold { .. })
        ));
    }

    #[test]
    fn secret_out_of_field_rejected() {
        let s = Shamir::default();
        assert_eq!(
            s.split(&U256::MAX, 2, 3, &mut prg(1)).unwrap_err(),
            ShamirError::SecretOutOfField
        );
    }

    #[test]
    fn duplicate_points_rejected() {
        let s = Shamir::default();
        let shares = s.split(&U256::from_u64(5), 2, 3, &mut prg(1)).unwrap();
        let dup = [shares[0].clone(), shares[0].clone()];
        assert_eq!(
            s.reconstruct(&dup, 2).unwrap_err(),
            ShamirError::DuplicatePoint(shares[0].x)
        );
    }

    #[test]
    fn zero_evaluation_point_rejected() {
        // x = 0 would make the "share" the secret itself; a forged share
        // claiming it must be rejected before interpolation.
        let s = Shamir::default();
        let mut shares = s.split(&U256::from_u64(77), 2, 3, &mut prg(4)).unwrap();
        shares[0].x = 0;
        assert_eq!(
            s.reconstruct(&shares[..2], 2).unwrap_err(),
            ShamirError::ZeroPoint
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let s = Shamir::default();
        let secret = U256::from_u64(1234);
        let a = s.split(&secret, 3, 5, &mut prg(7)).unwrap();
        let b = s.split(&secret, 3, 5, &mut prg(7)).unwrap();
        assert_eq!(a, b);
        let c = s.split(&secret, 3, 5, &mut prg(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn wrong_subset_of_lower_degree_gives_wrong_secret() {
        // Using threshold-1 shares as if threshold were lower must not
        // accidentally yield the secret (sanity, not security proof).
        let s = Shamir::default();
        let secret = U256::from_u64(31337);
        let shares = s.split(&secret, 3, 5, &mut prg(9)).unwrap();
        let wrong = s.reconstruct(&shares[..2], 2).unwrap();
        assert_ne!(wrong, secret);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_reconstruct_any_subset(
            secret in any::<u64>(),
            seed in any::<u8>(),
            t in 2usize..4,
            extra in 0usize..3,
        ) {
            let n = t + extra;
            let s = Shamir::default();
            let sec = U256::from_u64(secret);
            let mut p = ChaChaPrg::from_seed(&[seed; 32]);
            let shares = s.split(&sec, t, n, &mut p).unwrap();
            // Take the *last* t shares (arbitrary subset).
            let subset: Vec<Share> =
                shares.iter().rev().take(t).cloned().collect();
            prop_assert_eq!(s.reconstruct(&subset, t).unwrap(), sec);
        }
    }
}
