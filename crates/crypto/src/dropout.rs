//! Dropout recovery — the full-Bonawitz extension.
//!
//! The paper assumes every owner participates in every round (Sect. III),
//! so it never needs this machinery. The original secure-aggregation
//! protocol (Bonawitz et al. CCS'17), however, survives parties dropping
//! mid-round: every party Shamir-shares its DH private key across the
//! cohort at setup; if a party vanishes after the others already masked
//! against it, any `t` survivors reconstruct the dropped key, re-derive
//! the dropped party's pairwise masks, and cancel them out of the
//! aggregate.
//!
//! We implement the simplified single-mask variant (no double-masking /
//! self-mask): sufficient for the semi-honest model the paper works in,
//! and exactly the code path a dropout exercises.
//!
//! ```text
//! setup:    party i  →  shamir.split(a_i, t, n)  →  share_j to party j
//! round r:  survivors submit masked updates; party d drops
//! recover:  t survivors pool shares of a_d → a_d
//!           for each survivor s: m_{sd} = PRG(KDF(pub_s^a_d), r)
//!           corrected = Σ submissions − Σ_s orient(s,d)·m_{sd}
//! ```

use numeric::U256;

use crate::dh::{DhGroup, DhKeyPair};
use crate::masking::{PairwiseMasker, PartyId};
use crate::shamir::{Shamir, ShamirError, Share};
use crate::ChaChaPrg;

/// Errors from dropout recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropoutError {
    /// Underlying secret-sharing failure.
    Shamir(ShamirError),
    /// The reconstructed key does not reproduce the advertised public key
    /// (wrong shares, or shares of a different party).
    KeyMismatch,
}

impl From<ShamirError> for DropoutError {
    fn from(e: ShamirError) -> Self {
        Self::Shamir(e)
    }
}

impl std::fmt::Display for DropoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shamir(e) => write!(f, "secret sharing: {e}"),
            Self::KeyMismatch => {
                write!(
                    f,
                    "reconstructed key does not match the advertised public key"
                )
            }
        }
    }
}

impl std::error::Error for DropoutError {}

/// Key-escrow side of the protocol: splits a party's DH private key into
/// shares for the cohort.
pub fn escrow_private_key(
    shamir: &Shamir,
    keypair: &DhKeyPair,
    threshold: usize,
    cohort_size: usize,
    prg: &mut ChaChaPrg,
) -> Result<Vec<Share>, DropoutError> {
    Ok(shamir.split(&keypair.private, threshold, cohort_size, prg)?)
}

/// Reconstructs a dropped party's private key from shares and verifies it
/// against the advertised public key.
pub fn reconstruct_private_key(
    shamir: &Shamir,
    group: &DhGroup,
    shares: &[Share],
    threshold: usize,
    advertised_public: &U256,
) -> Result<U256, DropoutError> {
    let private = shamir.reconstruct(shares, threshold)?;
    let public = group.g.mod_pow(&private, &group.p);
    if &public != advertised_public {
        return Err(DropoutError::KeyMismatch);
    }
    Ok(private)
}

/// Removes a dropped party's residual masks from a partial ring sum.
///
/// `partial_sum` is `Σ` of the *survivors'* masked submissions; each
/// survivor `s` still carries an uncancelled `±m_{sd}` against the
/// dropped party `d`. Given `d`'s reconstructed private key, this derives
/// each pair mask and strips it, leaving `Σ encode(w_s)` exactly.
pub fn strip_dropped_masks(
    group: &DhGroup,
    partial_sum: &mut [u64],
    dropped: PartyId,
    dropped_private: &U256,
    survivors: &[(PartyId, U256)],
    round: u64,
) {
    for (survivor, survivor_public) in survivors {
        assert_ne!(*survivor, dropped, "dropped party cannot survive");
        let pair_key = group.shared_key(dropped_private, survivor_public);
        let masker = PairwiseMasker::new(pair_key);
        let mask = masker.mask_for_round(round, partial_sum.len());
        // Orientation convention (see `masking`): the smaller id *adds*
        // the pair mask. The survivor applied its side; remove it.
        if *survivor < dropped {
            // survivor added m_{sd} → subtract it.
            for (acc, m) in partial_sum.iter_mut().zip(&mask) {
                *acc = acc.wrapping_sub(*m);
            }
        } else {
            // survivor subtracted m_{sd} → add it back.
            for (acc, m) in partial_sum.iter_mut().zip(&mask) {
                *acc = acc.wrapping_add(*m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secure_agg::{KeyDirectory, PartyState};
    use numeric::FixedCodec;

    fn prg(tag: u8) -> ChaChaPrg {
        ChaChaPrg::from_seed(&[tag; 32])
    }

    /// The full dropout story: 4 parties escrow keys, party 3 drops after
    /// the others masked against it, 3 survivors recover the mean.
    #[test]
    fn dropout_recovery_end_to_end() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let codec = FixedCodec::default();
        let n = 4usize;
        let threshold = 3usize;
        let round = 5u64;
        let dim = 8usize;

        let keypairs: Vec<DhKeyPair> = (0..n as u8)
            .map(|i| group.keypair_from_seed(&[i + 1; 32]))
            .collect();
        let mut directory = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            directory.advertise(i as PartyId, kp.public).unwrap();
        }

        // Setup: everyone escrows its private key.
        let escrowed: Vec<Vec<Share>> = keypairs
            .iter()
            .enumerate()
            .map(|(i, kp)| {
                escrow_private_key(&shamir, kp, threshold, n, &mut prg(i as u8 + 40)).unwrap()
            })
            .collect();

        // Round: all four mask, but party 3's submission never arrives.
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..dim).map(|d| (i * dim + d) as f64 * 0.5).collect())
            .collect();
        let submissions: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                let party =
                    PartyState::derive(&group, i as PartyId, &keypairs[i], &directory).unwrap();
                party.masked_update(&codec, round, &weights[i])
            })
            .collect();

        // Partial sum over survivors 0..=2 only.
        let mut partial = vec![0u64; dim];
        for sub in &submissions[..3] {
            FixedCodec::ring_add_assign(&mut partial, sub);
        }

        // Survivors pool their shares of party 3's key (threshold = 3).
        let pooled: Vec<Share> = (0..3).map(|s| escrowed[3][s].clone()).collect();
        let recovered =
            reconstruct_private_key(&shamir, &group, &pooled, threshold, &keypairs[3].public)
                .unwrap();
        assert_eq!(recovered, keypairs[3].private);

        // Strip party 3's residual masks and decode the survivor mean.
        let survivors: Vec<(PartyId, U256)> =
            (0..3).map(|s| (s as PartyId, keypairs[s].public)).collect();
        strip_dropped_masks(&group, &mut partial, 3, &recovered, &survivors, round);

        for (d, &ring) in partial.iter().enumerate() {
            let expect: f64 = (0..3).map(|i| weights[i][d]).sum();
            let got = codec.decode(ring);
            assert!(
                (got - expect).abs() < 1e-6,
                "dim {d}: recovered {got}, want {expect}"
            );
        }
    }

    #[test]
    fn too_few_shares_fail() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp = group.keypair_from_seed(&[9u8; 32]);
        let shares = escrow_private_key(&shamir, &kp, 3, 5, &mut prg(1)).unwrap();
        let err =
            reconstruct_private_key(&shamir, &group, &shares[..2], 3, &kp.public).unwrap_err();
        assert!(matches!(err, DropoutError::Shamir(_)));
    }

    #[test]
    fn wrong_shares_detected_by_public_key_check() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp_a = group.keypair_from_seed(&[1u8; 32]);
        let kp_b = group.keypair_from_seed(&[2u8; 32]);
        // Shares of A's key, verified against B's public key.
        let shares = escrow_private_key(&shamir, &kp_a, 2, 3, &mut prg(3)).unwrap();
        let err =
            reconstruct_private_key(&shamir, &group, &shares[..2], 2, &kp_b.public).unwrap_err();
        assert_eq!(err, DropoutError::KeyMismatch);
    }

    #[test]
    fn recovery_without_stripping_leaves_garbage() {
        // Negative control: skipping the strip leaves masked noise.
        let group = DhGroup::simulation_256();
        let codec = FixedCodec::default();
        let n = 3usize;
        let keypairs: Vec<DhKeyPair> = (0..n as u8)
            .map(|i| group.keypair_from_seed(&[i + 7; 32]))
            .collect();
        let mut directory = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            directory.advertise(i as PartyId, kp.public).unwrap();
        }
        let submissions: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                let party =
                    PartyState::derive(&group, i as PartyId, &keypairs[i], &directory).unwrap();
                party.masked_update(&codec, 0, &[1.0])
            })
            .collect();
        let mut partial = vec![0u64; 1];
        for sub in &submissions[..2] {
            FixedCodec::ring_add_assign(&mut partial, sub);
        }
        let sloppy = codec.decode(partial[0]);
        assert!(
            (sloppy - 2.0).abs() > 1.0,
            "partial sum without stripping must be garbage, got {sloppy}"
        );
    }
}
