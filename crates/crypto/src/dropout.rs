//! Dropout recovery — the full-Bonawitz extension.
//!
//! The paper assumes every owner participates in every round (Sect. III),
//! so it never needs this machinery. The original secure-aggregation
//! protocol (Bonawitz et al. CCS'17), however, survives parties dropping
//! mid-round: every party Shamir-shares its DH private key across the
//! cohort at setup; if a party vanishes after the others already masked
//! against it, any `t` survivors reconstruct the dropped key, re-derive
//! the dropped party's pairwise masks, and cancel them out of the
//! aggregate.
//!
//! We implement the simplified single-mask variant (no double-masking /
//! self-mask): sufficient for the semi-honest model the paper works in,
//! and exactly the code path a dropout exercises.
//!
//! Recovery is defined over a **set** `D` of simultaneous dropouts, not a
//! single party: the survivors' pairwise masks cancel among themselves in
//! the partial sum, masks between two *dropped* parties never entered it
//! (neither submitted), so the only residue is one `±m_{sd}` per
//! (survivor `s`, dropped `d`) pair. All dropped keys are reconstructed
//! and every residual mask is stripped in one deterministic pass —
//! ascending dropped id, then ascending survivor id — so any re-executing
//! miner computes the identical corrected aggregate.
//!
//! ```text
//! setup:    party i  →  shamir.split(a_i, t, n)  →  share_j to party j
//! round r:  survivors submit masked updates; the set D drops
//! recover:  t survivors pool shares of a_d → a_d        (each d ∈ D)
//!           for each (s, d): m_{sd} = PRG(KDF(pub_s^a_d), r)
//!           corrected = Σ submissions − Σ_{s,d} orient(s,d)·m_{sd}
//! ```

use numeric::{par, U256};

use crate::dh::{DhGroup, DhKeyPair};
use crate::masking::{self, PairwiseMasker, PartyId};
use crate::shamir::{Shamir, ShamirError, Share};
use crate::ChaChaPrg;

/// Errors from dropout recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DropoutError {
    /// Underlying secret-sharing failure.
    Shamir(ShamirError),
    /// The reconstructed key does not reproduce the advertised public key
    /// (wrong shares, or shares of a different party).
    KeyMismatch,
}

impl From<ShamirError> for DropoutError {
    fn from(e: ShamirError) -> Self {
        Self::Shamir(e)
    }
}

impl std::fmt::Display for DropoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Shamir(e) => write!(f, "secret sharing: {e}"),
            Self::KeyMismatch => {
                write!(
                    f,
                    "reconstructed key does not match the advertised public key"
                )
            }
        }
    }
}

impl std::error::Error for DropoutError {}

/// Key-escrow side of the protocol: splits a party's DH private key into
/// shares for the cohort.
pub fn escrow_private_key(
    shamir: &Shamir,
    keypair: &DhKeyPair,
    threshold: usize,
    cohort_size: usize,
    prg: &mut ChaChaPrg,
) -> Result<Vec<Share>, DropoutError> {
    Ok(shamir.split(&keypair.private, threshold, cohort_size, prg)?)
}

/// Reconstructs a dropped party's private key from shares and verifies it
/// against the advertised public key.
pub fn reconstruct_private_key(
    shamir: &Shamir,
    group: &DhGroup,
    shares: &[Share],
    threshold: usize,
    advertised_public: &U256,
) -> Result<U256, DropoutError> {
    let private = shamir.reconstruct(shares, threshold)?;
    let public = group.public_of(&private);
    if &public != advertised_public {
        return Err(DropoutError::KeyMismatch);
    }
    Ok(private)
}

/// One dropped party's recovery inputs: its identity, the public key it
/// advertised (on-chain, before dropping), and the escrow shares the
/// survivors pooled for it.
#[derive(Debug, Clone)]
pub struct DroppedParty {
    /// The dropped party.
    pub id: PartyId,
    /// The DH public key the party advertised; reconstruction is
    /// verified against it.
    pub advertised_public: U256,
    /// Pooled escrow shares of the party's private key (≥ threshold).
    pub shares: Vec<Share>,
}

/// Removes a dropped party's residual masks from a partial ring sum.
///
/// Single-dropout convenience over [`strip_dropped_set_masks`]: see
/// there for the contract.
pub fn strip_dropped_masks(
    group: &DhGroup,
    partial_sum: &mut [u64],
    dropped: PartyId,
    dropped_private: &U256,
    survivors: &[(PartyId, U256)],
    round: u64,
) {
    strip_dropped_set_masks(
        group,
        partial_sum,
        &[(dropped, *dropped_private)],
        survivors,
        round,
    );
}

/// Removes the residual masks of a *set* of simultaneously dropped
/// parties from a survivors-only partial ring sum, in one pass.
///
/// `partial_sum` is `Σ` of the *survivors'* masked submissions; each
/// survivor `s` still carries an uncancelled `±m_{sd}` against every
/// dropped party `d` (masks between two dropped parties never entered
/// the sum, so nothing is stripped for those pairs). Given the
/// reconstructed private key of each dropped party, this derives every
/// (survivor, dropped) pair mask and strips it, leaving `Σ encode(w_s)`
/// exactly.
///
/// Deterministic order: pairs are processed ascending by dropped id,
/// then ascending by survivor id, and ring addition is exact wrapping
/// arithmetic, so the corrected sum is a pure function of the inputs —
/// bit-identical on every re-executing miner for any thread count (mask
/// expansions fan out on [`numeric::par`], one slot per pair, and are
/// folded in index order).
///
/// # Panics
///
/// Panics if `dropped` ids are not strictly ascending, a dropped party
/// also appears among the survivors, or a survivor public key is not a
/// valid group element (keys reaching this path were validated when
/// advertised on-chain).
pub fn strip_dropped_set_masks(
    group: &DhGroup,
    partial_sum: &mut [u64],
    dropped: &[(PartyId, U256)],
    survivors: &[(PartyId, U256)],
    round: u64,
) {
    assert!(
        dropped.windows(2).all(|w| w[0].0 < w[1].0),
        "dropped ids must be strictly ascending"
    );
    // The flat (dropped, survivor) pair list, in the canonical order.
    let mut ids: Vec<(PartyId, PartyId)> = Vec::new();
    let mut key_pairs: Vec<(U256, U256)> = Vec::new();
    for (d, d_private) in dropped {
        for (s, s_public) in survivors {
            assert_ne!(s, d, "dropped party {d} cannot survive");
            ids.push((*d, *s));
            key_pairs.push((*d_private, *s_public));
        }
    }
    // One batched agreement over every (dropped, survivor) pair — this is
    // the recovery hot path the bench's `secure_agg_recovery` rows track.
    let pair_keys = group
        .shared_keys_batch_pairs(&key_pairs)
        .expect("survivor keys were validated when advertised");
    // Each pair's mask is an independent ChaCha expansion; the fold below
    // consumes them in index order regardless of the schedule, so the
    // corrected sum is schedule-invariant.
    let dim = partial_sum.len();
    let masks = par::par_map(&pair_keys, 1, |_, pair_key| {
        PairwiseMasker::new(*pair_key).mask_for_round(round, dim)
    });
    for ((d, s), mask) in ids.iter().zip(&masks) {
        // Orientation convention (see `masking`): the smaller id *adds*
        // the pair mask. The survivor applied its side; remove it by
        // applying the *dropped* party's side, which cancels it.
        masking::apply_expanded(*d, *s, mask, partial_sum);
    }
}

/// Recovers an entire dropout set in one deterministic pass: every
/// dropped party's private key is reconstructed from its pooled escrow
/// shares and verified against the advertised public key, then all
/// residual (survivor, dropped) pair masks are stripped from
/// `partial_sum` via [`strip_dropped_set_masks`].
///
/// Returns the reconstructed private keys, ascending by dropped id.
///
/// # Panics
///
/// As [`strip_dropped_set_masks`].
pub fn recover_dropout_set(
    shamir: &Shamir,
    group: &DhGroup,
    partial_sum: &mut [u64],
    dropped: &[DroppedParty],
    survivors: &[(PartyId, U256)],
    threshold: usize,
    round: u64,
) -> Result<Vec<(PartyId, U256)>, DropoutError> {
    let mut recovered = Vec::with_capacity(dropped.len());
    for d in dropped {
        let private =
            reconstruct_private_key(shamir, group, &d.shares, threshold, &d.advertised_public)?;
        recovered.push((d.id, private));
    }
    strip_dropped_set_masks(group, partial_sum, &recovered, survivors, round);
    Ok(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secure_agg::{KeyDirectory, PartyState};
    use numeric::FixedCodec;

    fn prg(tag: u8) -> ChaChaPrg {
        ChaChaPrg::from_seed(&[tag; 32])
    }

    /// The full dropout story: 4 parties escrow keys, party 3 drops after
    /// the others masked against it, 3 survivors recover the mean.
    #[test]
    fn dropout_recovery_end_to_end() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let codec = FixedCodec::default();
        let n = 4usize;
        let threshold = 3usize;
        let round = 5u64;
        let dim = 8usize;

        let keypairs: Vec<DhKeyPair> = (0..n as u8)
            .map(|i| group.keypair_from_seed(&[i + 1; 32]))
            .collect();
        let mut directory = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            directory.advertise(i as PartyId, kp.public).unwrap();
        }

        // Setup: everyone escrows its private key.
        let escrowed: Vec<Vec<Share>> = keypairs
            .iter()
            .enumerate()
            .map(|(i, kp)| {
                escrow_private_key(&shamir, kp, threshold, n, &mut prg(i as u8 + 40)).unwrap()
            })
            .collect();

        // Round: all four mask, but party 3's submission never arrives.
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..dim).map(|d| (i * dim + d) as f64 * 0.5).collect())
            .collect();
        let submissions: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                let party =
                    PartyState::derive(&group, i as PartyId, &keypairs[i], &directory).unwrap();
                party.masked_update(&codec, round, &weights[i])
            })
            .collect();

        // Partial sum over survivors 0..=2 only.
        let mut partial = vec![0u64; dim];
        for sub in &submissions[..3] {
            FixedCodec::ring_add_assign(&mut partial, sub);
        }

        // Survivors pool their shares of party 3's key (threshold = 3).
        let pooled: Vec<Share> = (0..3).map(|s| escrowed[3][s].clone()).collect();
        let recovered =
            reconstruct_private_key(&shamir, &group, &pooled, threshold, &keypairs[3].public)
                .unwrap();
        assert_eq!(recovered, keypairs[3].private);

        // Strip party 3's residual masks and decode the survivor mean.
        let survivors: Vec<(PartyId, U256)> =
            (0..3).map(|s| (s as PartyId, keypairs[s].public)).collect();
        strip_dropped_masks(&group, &mut partial, 3, &recovered, &survivors, round);

        for (d, &ring) in partial.iter().enumerate() {
            let expect: f64 = (0..3).map(|i| weights[i][d]).sum();
            let got = codec.decode(ring);
            assert!(
                (got - expect).abs() < 1e-6,
                "dim {d}: recovered {got}, want {expect}"
            );
        }
    }

    /// The set variant: 5 parties escrow keys, parties 1 and 3 drop
    /// after everyone masked; the three survivors recover both keys and
    /// strip every residual mask in one pass.
    #[test]
    fn simultaneous_dropout_set_recovers_survivor_sum() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let codec = FixedCodec::default();
        let n = 5usize;
        let threshold = 3usize;
        let round = 9u64;
        let dim = 16usize;

        let keypairs: Vec<DhKeyPair> = (0..n as u8)
            .map(|i| group.keypair_from_seed(&[i + 11; 32]))
            .collect();
        let mut directory = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            directory.advertise(i as PartyId, kp.public).unwrap();
        }
        let escrowed: Vec<Vec<Share>> = keypairs
            .iter()
            .enumerate()
            .map(|(i, kp)| {
                escrow_private_key(&shamir, kp, threshold, n, &mut prg(i as u8 + 60)).unwrap()
            })
            .collect();

        let weights: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| (i * dim + d) as f64 * 0.25 - 3.0)
                    .collect()
            })
            .collect();
        let dropped_ids = [1usize, 3];
        let survivor_ids = [0usize, 2, 4];
        let mut partial = vec![0u64; dim];
        for i in survivor_ids {
            let party = PartyState::derive(&group, i as PartyId, &keypairs[i], &directory).unwrap();
            let masked = party.masked_update(&codec, round, &weights[i]);
            FixedCodec::ring_add_assign(&mut partial, &masked);
        }

        let survivors: Vec<(PartyId, U256)> = survivor_ids
            .iter()
            .map(|&s| (s as PartyId, keypairs[s].public))
            .collect();
        let dropped: Vec<DroppedParty> = dropped_ids
            .iter()
            .map(|&d| DroppedParty {
                id: d as PartyId,
                advertised_public: keypairs[d].public,
                shares: survivor_ids
                    .iter()
                    .map(|&s| escrowed[d][s].clone())
                    .collect(),
            })
            .collect();
        let recovered = recover_dropout_set(
            &shamir,
            &group,
            &mut partial,
            &dropped,
            &survivors,
            threshold,
            round,
        )
        .unwrap();
        assert_eq!(recovered.len(), 2);
        for ((id, private), d) in recovered.iter().zip(&dropped_ids) {
            assert_eq!(*id, *d as PartyId);
            assert_eq!(*private, keypairs[*d].private);
        }

        for (c, &ring) in partial.iter().enumerate() {
            let expect: f64 = survivor_ids.iter().map(|&i| weights[i][c]).sum();
            let got = codec.decode(ring);
            assert!(
                (got - expect).abs() < 1e-6,
                "dim {c}: recovered {got}, want {expect}"
            );
        }
    }

    #[test]
    fn set_strip_equals_sequential_single_strips() {
        // The one-pass set strip must be bit-identical to stripping each
        // dropped party in ascending order with the single-party API.
        let group = DhGroup::simulation_256();
        let keypairs: Vec<DhKeyPair> = (0..4u8)
            .map(|i| group.keypair_from_seed(&[i + 31; 32]))
            .collect();
        let survivors: Vec<(PartyId, U256)> =
            vec![(0, keypairs[0].public), (2, keypairs[2].public)];
        let dropped: Vec<(PartyId, U256)> =
            vec![(1, keypairs[1].private), (3, keypairs[3].private)];
        let base: Vec<u64> = (0..32).map(|i| i as u64 * 0x9e37_79b9).collect();

        let mut one_pass = base.clone();
        strip_dropped_set_masks(&group, &mut one_pass, &dropped, &survivors, 4);
        let mut sequential = base;
        for (d, private) in &dropped {
            strip_dropped_masks(&group, &mut sequential, *d, private, &survivors, 4);
        }
        assert_eq!(one_pass, sequential);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_dropout_set_panics() {
        let group = DhGroup::simulation_256();
        let kp = group.keypair_from_seed(&[5u8; 32]);
        let mut sum = vec![0u64; 4];
        strip_dropped_set_masks(
            &group,
            &mut sum,
            &[(3, kp.private), (1, kp.private)],
            &[(0, kp.public)],
            0,
        );
    }

    #[test]
    fn duplicate_share_indices_rejected() {
        // A malicious survivor replaying another's evaluation point must
        // surface as a clean Shamir error, not a bogus reconstruction.
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp = group.keypair_from_seed(&[8u8; 32]);
        let shares = escrow_private_key(&shamir, &kp, 3, 5, &mut prg(2)).unwrap();
        let dup = vec![shares[0].clone(), shares[0].clone(), shares[1].clone()];
        let err = reconstruct_private_key(&shamir, &group, &dup, 3, &kp.public).unwrap_err();
        assert_eq!(
            err,
            DropoutError::Shamir(ShamirError::DuplicatePoint(shares[0].x))
        );
    }

    #[test]
    fn threshold_equals_cohort_size_round_trips() {
        // t = n edge case: recovery needs *every* party's share — which
        // contradicts a dropout (the dropped party cannot contribute), so
        // the reconstruction itself must still work from all n shares.
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp = group.keypair_from_seed(&[13u8; 32]);
        let shares = escrow_private_key(&shamir, &kp, 5, 5, &mut prg(4)).unwrap();
        let recovered = reconstruct_private_key(&shamir, &group, &shares, 5, &kp.public).unwrap();
        assert_eq!(recovered, kp.private);
    }

    #[test]
    fn below_threshold_set_recovery_is_a_clean_error() {
        // recover_dropout_set with too few pooled shares must return the
        // Shamir error — never panic mid-strip or corrupt the sum.
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp = group.keypair_from_seed(&[21u8; 32]);
        let other = group.keypair_from_seed(&[22u8; 32]);
        let shares = escrow_private_key(&shamir, &kp, 3, 4, &mut prg(6)).unwrap();
        let base: Vec<u64> = vec![7u64; 8];
        let mut sum = base.clone();
        let err = recover_dropout_set(
            &shamir,
            &group,
            &mut sum,
            &[DroppedParty {
                id: 0,
                advertised_public: kp.public,
                shares: shares[..2].to_vec(),
            }],
            &[(1, other.public)],
            3,
            0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            DropoutError::Shamir(ShamirError::NotEnoughShares { got: 2, need: 3 })
        );
        assert_eq!(sum, base, "a failed recovery must leave the sum untouched");
    }

    #[test]
    fn too_few_shares_fail() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp = group.keypair_from_seed(&[9u8; 32]);
        let shares = escrow_private_key(&shamir, &kp, 3, 5, &mut prg(1)).unwrap();
        let err =
            reconstruct_private_key(&shamir, &group, &shares[..2], 3, &kp.public).unwrap_err();
        assert!(matches!(err, DropoutError::Shamir(_)));
    }

    #[test]
    fn wrong_shares_detected_by_public_key_check() {
        let group = DhGroup::simulation_256();
        let shamir = Shamir::default();
        let kp_a = group.keypair_from_seed(&[1u8; 32]);
        let kp_b = group.keypair_from_seed(&[2u8; 32]);
        // Shares of A's key, verified against B's public key.
        let shares = escrow_private_key(&shamir, &kp_a, 2, 3, &mut prg(3)).unwrap();
        let err =
            reconstruct_private_key(&shamir, &group, &shares[..2], 2, &kp_b.public).unwrap_err();
        assert_eq!(err, DropoutError::KeyMismatch);
    }

    #[test]
    fn recovery_without_stripping_leaves_garbage() {
        // Negative control: skipping the strip leaves masked noise.
        let group = DhGroup::simulation_256();
        let codec = FixedCodec::default();
        let n = 3usize;
        let keypairs: Vec<DhKeyPair> = (0..n as u8)
            .map(|i| group.keypair_from_seed(&[i + 7; 32]))
            .collect();
        let mut directory = KeyDirectory::new();
        for (i, kp) in keypairs.iter().enumerate() {
            directory.advertise(i as PartyId, kp.public).unwrap();
        }
        let submissions: Vec<Vec<u64>> = (0..n)
            .map(|i| {
                let party =
                    PartyState::derive(&group, i as PartyId, &keypairs[i], &directory).unwrap();
                party.masked_update(&codec, 0, &[1.0])
            })
            .collect();
        let mut partial = vec![0u64; 1];
        for sub in &submissions[..2] {
            FixedCodec::ring_add_assign(&mut partial, sub);
        }
        let sloppy = codec.decode(partial[0]);
        assert!(
            (sloppy - 2.0).abs() > 1.0,
            "partial sum without stripping must be garbage, got {sloppy}"
        );
    }
}
