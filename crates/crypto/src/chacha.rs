//! Deterministic ChaCha20 keystream generator (RFC 8439 block function).
//!
//! This is the `PRNG(·)` of the paper's Sect. IV-A1: given a seed derived
//! from a Diffie–Hellman pair key and a round number, it expands into the
//! mask vector added to (or subtracted from) a user's model update. It must
//! be *deterministic across machines* — every miner re-derives the same
//! masks when re-executing the contract — which is why the workspace does
//! not use `rand`'s unspecified `StdRng` algorithm here.

/// Deterministic ChaCha20-based pseudorandom generator.
#[derive(Clone)]
pub struct ChaChaPrg {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    block: [u8; 64],
    offset: usize,
}

const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaChaPrg {
    /// Creates a generator from a 32-byte key and a 12-byte nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key: k,
            nonce: n,
            counter: 0,
            block: [0u8; 64],
            offset: 64, // force a refill on first use
        }
    }

    /// Creates a generator from a 32-byte seed with a zero nonce.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        Self::new(seed, &[0u8; 12])
    }

    /// Produces the next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    /// Produces the next pseudorandom `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Fills `out` with keystream bytes.
    ///
    /// Large requests (mask expansion fills `8 · dim` bytes at once) are
    /// served four blocks at a time through an interleaved-lane block
    /// function the compiler auto-vectorizes; the byte stream is
    /// identical to repeated single-block refills.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.offset == 64 {
                // Batched path: whole blocks straight into the output,
                // skipping the internal block buffer entirely.
                while out.len() - written >= 256 {
                    self.four_blocks(&mut out[written..written + 256]);
                    written += 256;
                }
                if written == out.len() {
                    return;
                }
                self.refill();
            }
            let take = (64 - self.offset).min(out.len() - written);
            out[written..written + take]
                .copy_from_slice(&self.block[self.offset..self.offset + take]);
            self.offset += take;
            written += take;
        }
    }

    /// Produces `n` pseudorandom `u64` values.
    ///
    /// Consumes whole 64-byte keystream blocks — four at a time through
    /// the interleaved block function, with the `u64`s assembled straight
    /// from the keystream words — instead of paying the per-call offset
    /// bookkeeping of `n` separate [`ChaChaPrg::next_u64`] draws; mask
    /// expansion calls this with `n = dim` for every pair every round.
    /// The output is identical to `n` successive `next_u64` calls.
    pub fn gen_u64_vec(&mut self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        let mut filled = 0usize;
        // Batched paths (widest first), valid only on a block boundary
        // (nothing buffered to drain first); then the scalar tail.
        if self.offset == 64 {
            filled = self.fill_u64_wide(&mut out, filled);
            while n - filled >= 32 {
                self.four_blocks_u64(&mut out[filled..filled + 32]);
                filled += 32;
            }
        }
        for slot in &mut out[filled..] {
            *slot = self.next_u64();
        }
        out
    }

    /// Uniform `u64` below `bound` via rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Computes keystream blocks `counter .. counter + 4` into `out`
    /// (256 bytes), advancing the counter. All sixteen state words are
    /// kept as 4-wide lanes (one lane per block) so every quarter-round
    /// operation is a 4-element loop the compiler turns into SIMD; the
    /// emitted bytes equal four sequential [`ChaChaPrg::refill`] blocks.
    fn four_blocks(&mut self, out: &mut [u8]) {
        debug_assert_eq!(out.len(), 256);
        let words = self.four_block_words();
        for (lane, block) in out.chunks_exact_mut(64).enumerate() {
            for (slot, word) in block.chunks_exact_mut(4).zip(&words) {
                slot.copy_from_slice(&word[lane].to_le_bytes());
            }
        }
    }

    /// Like [`ChaChaPrg::four_blocks`] but assembles the 256 keystream
    /// bytes directly as 32 little-endian `u64`s, skipping the byte
    /// buffer round trip.
    fn four_blocks_u64(&mut self, out: &mut [u64]) {
        debug_assert_eq!(out.len(), 32);
        let words = self.four_block_words();
        for (lane, block) in out.chunks_exact_mut(8).enumerate() {
            for (i, slot) in block.iter_mut().enumerate() {
                *slot = u64::from(words[2 * i][lane]) | (u64::from(words[2 * i + 1][lane]) << 32);
            }
        }
    }

    /// Computes keystream blocks `counter .. counter + 4` as sixteen
    /// 4-lane words (lane = block index), advancing the counter.
    fn four_block_words(&mut self) -> [[u32; 4]; 16] {
        debug_assert_eq!(self.offset, 64, "no buffered bytes may be skipped");
        let counter_end = self
            .counter
            .checked_add(4)
            .expect("ChaCha20 keystream exhausted (2^38 bytes)");
        let words = simd::block_words4(&self.key, &self.nonce, self.counter);
        self.counter = counter_end;
        words
    }

    /// AVX2 path: keystream blocks `counter .. counter + 8` assembled as
    /// 64 little-endian `u64`s. Only called after
    /// [`simd::wide_available`] returned `true`.
    #[cfg(target_arch = "x86_64")]
    fn eight_blocks_u64(&mut self, out: &mut [u64]) {
        debug_assert_eq!(out.len(), 64);
        debug_assert_eq!(self.offset, 64, "no buffered bytes may be skipped");
        let counter_end = self
            .counter
            .checked_add(8)
            .expect("ChaCha20 keystream exhausted (2^38 bytes)");
        let words = simd::block_words8(&self.key, &self.nonce, self.counter);
        self.counter = counter_end;
        for (lane, block) in out.chunks_exact_mut(8).enumerate() {
            for (i, slot) in block.iter_mut().enumerate() {
                *slot = u64::from(words[2 * i][lane]) | (u64::from(words[2 * i + 1][lane]) << 32);
            }
        }
    }

    /// Drains as many wide (AVX2 eight-block) batches into `out[filled..]`
    /// as fit, returning the new fill mark. No-op off x86-64 or when the
    /// CPU lacks AVX2 — the four-block path picks up from there.
    fn fill_u64_wide(&mut self, out: &mut [u64], filled: usize) -> usize {
        #[cfg(target_arch = "x86_64")]
        {
            let mut filled = filled;
            if simd::wide_available() {
                while out.len() - filled >= 64 {
                    self.eight_blocks_u64(&mut out[filled..filled + 64]);
                    filled += 64;
                }
            }
            filled
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = out;
            filled
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(&state) {
            *w = w.wrapping_add(*s);
        }
        for (i, word) in working.iter().enumerate() {
            self.block[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self
            .counter
            .checked_add(1)
            .expect("ChaCha20 keystream exhausted (2^38 bytes)");
        self.offset = 0;
    }
}

/// Multi-block ChaCha20 backends.
///
/// All backends compute the same function — keystream blocks
/// `counter .. counter + LANES` as sixteen LANES-wide words — and the
/// unit tests pin them against the scalar RFC 8439 path, so backend
/// selection can never change a single keystream byte.
mod simd {
    #[cfg(target_arch = "aarch64")]
    pub(super) use neon::block_words4;
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    pub(super) use portable::block_words4;
    #[cfg(target_arch = "x86_64")]
    pub(super) use x86::{block_words4, block_words8, wide_available};

    #[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), allow(dead_code))]
    mod portable {
        use super::super::CHACHA_CONST;

        /// 4-lane rotate-left.
        #[inline(always)]
        fn rotl(v: [u32; 4], n: u32) -> [u32; 4] {
            [
                v[0].rotate_left(n),
                v[1].rotate_left(n),
                v[2].rotate_left(n),
                v[3].rotate_left(n),
            ]
        }

        /// 4-lane wrapping add.
        #[inline(always)]
        fn add(a: [u32; 4], b: [u32; 4]) -> [u32; 4] {
            [
                a[0].wrapping_add(b[0]),
                a[1].wrapping_add(b[1]),
                a[2].wrapping_add(b[2]),
                a[3].wrapping_add(b[3]),
            ]
        }

        /// 4-lane xor.
        #[inline(always)]
        fn xor(a: [u32; 4], b: [u32; 4]) -> [u32; 4] {
            [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
        }

        /// Four interleaved blocks with plain array arithmetic; the
        /// sixteen state words are named locals so they stay in
        /// registers across the round loop.
        pub(in super::super) fn block_words4(
            key: &[u32; 8],
            nonce: &[u32; 3],
            counter: u32,
        ) -> [[u32; 4]; 16] {
            macro_rules! init {
                ($($x:ident = $w:expr;)*) => { $(let mut $x = [$w; 4];)* };
            }
            init! {
                x0 = CHACHA_CONST[0]; x1 = CHACHA_CONST[1];
                x2 = CHACHA_CONST[2]; x3 = CHACHA_CONST[3];
                x4 = key[0]; x5 = key[1]; x6 = key[2]; x7 = key[3];
                x8 = key[4]; x9 = key[5]; x10 = key[6]; x11 = key[7];
                x13 = nonce[0]; x14 = nonce[1]; x15 = nonce[2];
            }
            let mut x12 = [counter, counter + 1, counter + 2, counter + 3];
            let init12 = x12;

            macro_rules! quarter {
                ($a:ident, $b:ident, $c:ident, $d:ident) => {
                    $a = add($a, $b);
                    $d = rotl(xor($d, $a), 16);
                    $c = add($c, $d);
                    $b = rotl(xor($b, $c), 12);
                    $a = add($a, $b);
                    $d = rotl(xor($d, $a), 8);
                    $c = add($c, $d);
                    $b = rotl(xor($b, $c), 7);
                };
            }
            for _ in 0..10 {
                // column rounds
                quarter!(x0, x4, x8, x12);
                quarter!(x1, x5, x9, x13);
                quarter!(x2, x6, x10, x14);
                quarter!(x3, x7, x11, x15);
                // diagonal rounds
                quarter!(x0, x5, x10, x15);
                quarter!(x1, x6, x11, x12);
                quarter!(x2, x7, x8, x13);
                quarter!(x3, x4, x9, x14);
            }

            [
                add(x0, [CHACHA_CONST[0]; 4]),
                add(x1, [CHACHA_CONST[1]; 4]),
                add(x2, [CHACHA_CONST[2]; 4]),
                add(x3, [CHACHA_CONST[3]; 4]),
                add(x4, [key[0]; 4]),
                add(x5, [key[1]; 4]),
                add(x6, [key[2]; 4]),
                add(x7, [key[3]; 4]),
                add(x8, [key[4]; 4]),
                add(x9, [key[5]; 4]),
                add(x10, [key[6]; 4]),
                add(x11, [key[7]; 4]),
                add(x12, init12),
                add(x13, [nonce[0]; 4]),
                add(x14, [nonce[1]; 4]),
                add(x15, [nonce[2]; 4]),
            ]
        }
    }

    /// NEON backend: four interleaved blocks over the 128-bit
    /// `uint32x4_t` lanes. NEON (Advanced SIMD) is part of the aarch64
    /// baseline — every AArch64 CPU this code can run on has it — so,
    /// like the SSE2 path on x86-64, no runtime detection is needed. The
    /// backend-equality test below pins it word-for-word against the
    /// portable path, so backend selection can never change a keystream
    /// byte.
    #[cfg(target_arch = "aarch64")]
    #[allow(unsafe_code)]
    mod neon {
        use core::arch::aarch64::{
            uint32x4_t, vaddq_u32, vdupq_n_u32, veorq_u32, vld1q_u32, vorrq_u32, vshlq_n_u32,
            vshrq_n_u32, vst1q_u32,
        };

        use super::super::CHACHA_CONST;

        /// Four interleaved blocks over NEON.
        pub(in super::super) fn block_words4(
            key: &[u32; 8],
            nonce: &[u32; 3],
            counter: u32,
        ) -> [[u32; 4]; 16] {
            // SAFETY: every intrinsic used is Advanced SIMD (NEON),
            // which the aarch64 ABI guarantees on every CPU this code
            // can run on; loads/stores go through `vld1q_u32`/
            // `vst1q_u32` (no alignment requirement) on properly sized
            // `[u32; 4]` arrays.
            unsafe {
                let splat = |w: u32| vdupq_n_u32(w);
                let counters = [counter, counter + 1, counter + 2, counter + 3];
                let mut v: [uint32x4_t; 16] = [
                    splat(CHACHA_CONST[0]),
                    splat(CHACHA_CONST[1]),
                    splat(CHACHA_CONST[2]),
                    splat(CHACHA_CONST[3]),
                    splat(key[0]),
                    splat(key[1]),
                    splat(key[2]),
                    splat(key[3]),
                    splat(key[4]),
                    splat(key[5]),
                    splat(key[6]),
                    splat(key[7]),
                    vld1q_u32(counters.as_ptr()),
                    splat(nonce[0]),
                    splat(nonce[1]),
                    splat(nonce[2]),
                ];
                let init = v;

                macro_rules! rotl {
                    ($x:expr, $n:literal) => {
                        vorrq_u32(vshlq_n_u32::<$n>($x), vshrq_n_u32::<{ 32 - $n }>($x))
                    };
                }
                macro_rules! quarter {
                    ($a:literal, $b:literal, $c:literal, $d:literal) => {
                        v[$a] = vaddq_u32(v[$a], v[$b]);
                        v[$d] = rotl!(veorq_u32(v[$d], v[$a]), 16);
                        v[$c] = vaddq_u32(v[$c], v[$d]);
                        v[$b] = rotl!(veorq_u32(v[$b], v[$c]), 12);
                        v[$a] = vaddq_u32(v[$a], v[$b]);
                        v[$d] = rotl!(veorq_u32(v[$d], v[$a]), 8);
                        v[$c] = vaddq_u32(v[$c], v[$d]);
                        v[$b] = rotl!(veorq_u32(v[$b], v[$c]), 7);
                    };
                }
                for _ in 0..10 {
                    // column rounds
                    quarter!(0, 4, 8, 12);
                    quarter!(1, 5, 9, 13);
                    quarter!(2, 6, 10, 14);
                    quarter!(3, 7, 11, 15);
                    // diagonal rounds
                    quarter!(0, 5, 10, 15);
                    quarter!(1, 6, 11, 12);
                    quarter!(2, 7, 8, 13);
                    quarter!(3, 4, 9, 14);
                }

                let mut out = [[0u32; 4]; 16];
                for i in 0..16 {
                    let word = vaddq_u32(v[i], init[i]);
                    vst1q_u32(out[i].as_mut_ptr(), word);
                }
                out
            }
        }

        #[cfg(test)]
        mod tests {
            use super::*;

            #[test]
            fn neon_matches_portable() {
                let key: [u32; 8] = core::array::from_fn(|i| (i as u32 + 1) * 0x1234_5679);
                let nonce = [7u32, 11, 13];
                for counter in [0u32, 1, 1000] {
                    assert_eq!(
                        block_words4(&key, &nonce, counter),
                        super::super::portable::block_words4(&key, &nonce, counter),
                    );
                }
            }
        }
    }

    /// Explicit-SIMD backends. The auto-vectorizer refuses the 4-lane
    /// array form of the round loop (64 live `u32`s spill through the
    /// sixteen general-purpose registers), so the rounds are written
    /// with `core::arch` intrinsics — the only `unsafe` in the
    /// workspace, scoped to this module and pinned byte-for-byte against
    /// the scalar path by the keystream tests.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    mod x86 {
        use core::arch::x86_64::{
            __m128i, __m256i, _mm256_add_epi32, _mm256_or_si256, _mm256_setr_epi32,
            _mm256_slli_epi32, _mm256_srli_epi32, _mm256_storeu_si256, _mm256_xor_si256,
            _mm_add_epi32, _mm_or_si128, _mm_setr_epi32, _mm_slli_epi32, _mm_srli_epi32,
            _mm_storeu_si128, _mm_xor_si128,
        };
        use std::sync::OnceLock;

        use super::super::CHACHA_CONST;

        /// True when the CPU supports the eight-block AVX2 path.
        pub(in super::super) fn wide_available() -> bool {
            static AVX2: OnceLock<bool> = OnceLock::new();
            *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
        }

        /// Four interleaved blocks over SSE2 (part of the x86-64
        /// baseline, so this path needs no runtime detection).
        pub(in super::super) fn block_words4(
            key: &[u32; 8],
            nonce: &[u32; 3],
            counter: u32,
        ) -> [[u32; 4]; 16] {
            // SAFETY: every intrinsic used is SSE2, which the x86-64
            // psABI guarantees on every CPU this code can run on; the
            // stores go through `_mm_storeu_si128` (no alignment
            // requirement) into a properly sized `[[u32; 4]; 16]`.
            unsafe {
                let splat = |w: u32| _mm_setr_epi32(w as i32, w as i32, w as i32, w as i32);
                let mut v: [__m128i; 16] = [
                    splat(CHACHA_CONST[0]),
                    splat(CHACHA_CONST[1]),
                    splat(CHACHA_CONST[2]),
                    splat(CHACHA_CONST[3]),
                    splat(key[0]),
                    splat(key[1]),
                    splat(key[2]),
                    splat(key[3]),
                    splat(key[4]),
                    splat(key[5]),
                    splat(key[6]),
                    splat(key[7]),
                    _mm_setr_epi32(
                        counter as i32,
                        (counter + 1) as i32,
                        (counter + 2) as i32,
                        (counter + 3) as i32,
                    ),
                    splat(nonce[0]),
                    splat(nonce[1]),
                    splat(nonce[2]),
                ];
                let init = v;

                macro_rules! rotl {
                    ($x:expr, $n:literal) => {
                        _mm_or_si128(_mm_slli_epi32::<$n>($x), _mm_srli_epi32::<{ 32 - $n }>($x))
                    };
                }
                macro_rules! quarter {
                    ($a:literal, $b:literal, $c:literal, $d:literal) => {
                        v[$a] = _mm_add_epi32(v[$a], v[$b]);
                        v[$d] = rotl!(_mm_xor_si128(v[$d], v[$a]), 16);
                        v[$c] = _mm_add_epi32(v[$c], v[$d]);
                        v[$b] = rotl!(_mm_xor_si128(v[$b], v[$c]), 12);
                        v[$a] = _mm_add_epi32(v[$a], v[$b]);
                        v[$d] = rotl!(_mm_xor_si128(v[$d], v[$a]), 8);
                        v[$c] = _mm_add_epi32(v[$c], v[$d]);
                        v[$b] = rotl!(_mm_xor_si128(v[$b], v[$c]), 7);
                    };
                }
                for _ in 0..10 {
                    // column rounds
                    quarter!(0, 4, 8, 12);
                    quarter!(1, 5, 9, 13);
                    quarter!(2, 6, 10, 14);
                    quarter!(3, 7, 11, 15);
                    // diagonal rounds
                    quarter!(0, 5, 10, 15);
                    quarter!(1, 6, 11, 12);
                    quarter!(2, 7, 8, 13);
                    quarter!(3, 4, 9, 14);
                }

                let mut out = [[0u32; 4]; 16];
                for i in 0..16 {
                    let word = _mm_add_epi32(v[i], init[i]);
                    _mm_storeu_si128(out[i].as_mut_ptr().cast::<__m128i>(), word);
                }
                out
            }
        }

        /// Eight interleaved blocks over AVX2. Callers must check
        /// [`wide_available`] first.
        pub(in super::super) fn block_words8(
            key: &[u32; 8],
            nonce: &[u32; 3],
            counter: u32,
        ) -> [[u32; 8]; 16] {
            assert!(wide_available(), "AVX2 path called without support");
            // SAFETY: `wide_available` verified AVX2 at runtime, and the
            // stores go through `_mm256_storeu_si256` (no alignment
            // requirement) into a properly sized `[[u32; 8]; 16]`.
            unsafe { block_words8_avx2(key, nonce, counter) }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn block_words8_avx2(
            key: &[u32; 8],
            nonce: &[u32; 3],
            counter: u32,
        ) -> [[u32; 8]; 16] {
            let splat = |w: u32| {
                let w = w as i32;
                _mm256_setr_epi32(w, w, w, w, w, w, w, w)
            };
            let mut v: [__m256i; 16] = [
                splat(CHACHA_CONST[0]),
                splat(CHACHA_CONST[1]),
                splat(CHACHA_CONST[2]),
                splat(CHACHA_CONST[3]),
                splat(key[0]),
                splat(key[1]),
                splat(key[2]),
                splat(key[3]),
                splat(key[4]),
                splat(key[5]),
                splat(key[6]),
                splat(key[7]),
                _mm256_setr_epi32(
                    counter as i32,
                    (counter + 1) as i32,
                    (counter + 2) as i32,
                    (counter + 3) as i32,
                    (counter + 4) as i32,
                    (counter + 5) as i32,
                    (counter + 6) as i32,
                    (counter + 7) as i32,
                ),
                splat(nonce[0]),
                splat(nonce[1]),
                splat(nonce[2]),
            ];
            let init = v;

            macro_rules! rotl {
                ($x:expr, $n:literal) => {
                    _mm256_or_si256(
                        _mm256_slli_epi32::<$n>($x),
                        _mm256_srli_epi32::<{ 32 - $n }>($x),
                    )
                };
            }
            macro_rules! quarter {
                ($a:literal, $b:literal, $c:literal, $d:literal) => {
                    v[$a] = _mm256_add_epi32(v[$a], v[$b]);
                    v[$d] = rotl!(_mm256_xor_si256(v[$d], v[$a]), 16);
                    v[$c] = _mm256_add_epi32(v[$c], v[$d]);
                    v[$b] = rotl!(_mm256_xor_si256(v[$b], v[$c]), 12);
                    v[$a] = _mm256_add_epi32(v[$a], v[$b]);
                    v[$d] = rotl!(_mm256_xor_si256(v[$d], v[$a]), 8);
                    v[$c] = _mm256_add_epi32(v[$c], v[$d]);
                    v[$b] = rotl!(_mm256_xor_si256(v[$b], v[$c]), 7);
                };
            }
            for _ in 0..10 {
                // column rounds
                quarter!(0, 4, 8, 12);
                quarter!(1, 5, 9, 13);
                quarter!(2, 6, 10, 14);
                quarter!(3, 7, 11, 15);
                // diagonal rounds
                quarter!(0, 5, 10, 15);
                quarter!(1, 6, 11, 12);
                quarter!(2, 7, 8, 13);
                quarter!(3, 4, 9, 14);
            }

            let mut out = [[0u32; 8]; 16];
            for i in 0..16 {
                let word = _mm256_add_epi32(v[i], init[i]);
                _mm256_storeu_si256(out[i].as_mut_ptr().cast::<__m256i>(), word);
            }
            out
        }

        #[cfg(test)]
        mod tests {
            use super::*;

            #[test]
            fn sse2_matches_portable() {
                let key: [u32; 8] = core::array::from_fn(|i| (i as u32 + 1) * 0x1234_5679);
                let nonce = [7u32, 11, 13];
                for counter in [0u32, 1, 1000] {
                    assert_eq!(
                        block_words4(&key, &nonce, counter),
                        super::super::portable::block_words4(&key, &nonce, counter),
                    );
                }
            }

            #[test]
            fn avx2_matches_sse2_when_available() {
                if !wide_available() {
                    return;
                }
                let key: [u32; 8] = core::array::from_fn(|i| (i as u32).wrapping_mul(0x9e37_79b9));
                let nonce = [3u32, 1, 4];
                let wide = block_words8(&key, &nonce, 40);
                let lo = block_words4(&key, &nonce, 40);
                let hi = block_words4(&key, &nonce, 44);
                for i in 0..16 {
                    assert_eq!(wide[i][..4], lo[i]);
                    assert_eq!(wide[i][4..], hi[i]);
                }
            }
        }
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: key 00..1f, nonce 000000090000004a00000000,
    /// counter 1 — first block keystream.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut prg = ChaChaPrg::new(&key, &nonce);
        prg.counter = 1; // the RFC vector starts at block counter 1
        let mut out = [0u8; 64];
        prg.fill_bytes(&mut out);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn deterministic_across_instances() {
        let seed = [7u8; 32];
        let mut a = ChaChaPrg::from_seed(&seed);
        let mut b = ChaChaPrg::from_seed(&seed);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaPrg::from_seed(&[1u8; 32]);
        let mut b = ChaChaPrg::from_seed(&[2u8; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fill_bytes_chunking_invariant() {
        // 1000 bytes crosses the 256-byte four-block fast path in the
        // whole-buffer fill; the pieces include sub-block, block-aligned,
        // and straddling sizes. All splits must yield one stream.
        let seed = [9u8; 32];
        let mut whole = ChaChaPrg::from_seed(&seed);
        let mut buf_whole = [0u8; 1000];
        whole.fill_bytes(&mut buf_whole);

        let mut pieces = ChaChaPrg::from_seed(&seed);
        let mut buf_pieces = [0u8; 1000];
        let mut written = 0;
        for chunk in [1usize, 5, 63, 64, 67, 256, 300, 244] {
            pieces.fill_bytes(&mut buf_pieces[written..written + chunk]);
            written += chunk;
        }
        assert_eq!(written, 1000);
        assert_eq!(buf_whole, buf_pieces);
    }

    #[test]
    fn gen_u64_vec_matches_next_u64_stream() {
        // The block-filled fast path must produce the identical stream to
        // per-u64 draws (and leave the generator in the identical state).
        let seed = [11u8; 32];
        let mut fast = ChaChaPrg::from_seed(&seed);
        let mut slow = ChaChaPrg::from_seed(&seed);
        for n in [0usize, 1, 7, 8, 9, 100, 650] {
            let v_fast = fast.gen_u64_vec(n);
            let v_slow: Vec<u64> = (0..n).map(|_| slow.next_u64()).collect();
            assert_eq!(v_fast, v_slow, "n={n}");
        }
        assert_eq!(fast.next_u64(), slow.next_u64(), "states must stay in sync");
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut prg = ChaChaPrg::from_seed(&[3u8; 32]);
        for bound in [1u64, 2, 7, 100, 1 << 33] {
            for _ in 0..50 {
                assert!(prg.next_u64_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        ChaChaPrg::from_seed(&[0u8; 32]).next_u64_below(0);
    }

    #[test]
    fn bounded_sampling_roughly_uniform() {
        let mut prg = ChaChaPrg::from_seed(&[5u8; 32]);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[prg.next_u64_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} outside [800,1200]"
            );
        }
    }
}
