//! Deterministic ChaCha20 keystream generator (RFC 8439 block function).
//!
//! This is the `PRNG(·)` of the paper's Sect. IV-A1: given a seed derived
//! from a Diffie–Hellman pair key and a round number, it expands into the
//! mask vector added to (or subtracted from) a user's model update. It must
//! be *deterministic across machines* — every miner re-derives the same
//! masks when re-executing the contract — which is why the workspace does
//! not use `rand`'s unspecified `StdRng` algorithm here.

/// Deterministic ChaCha20-based pseudorandom generator.
#[derive(Clone)]
pub struct ChaChaPrg {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    block: [u8; 64],
    offset: usize,
}

const CHACHA_CONST: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

impl ChaChaPrg {
    /// Creates a generator from a 32-byte key and a 12-byte nonce.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        let mut k = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            k[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut n = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            n[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key: k,
            nonce: n,
            counter: 0,
            block: [0u8; 64],
            offset: 64, // force a refill on first use
        }
    }

    /// Creates a generator from a 32-byte seed with a zero nonce.
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        Self::new(seed, &[0u8; 12])
    }

    /// Produces the next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    /// Produces the next pseudorandom `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    /// Fills `out` with keystream bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.offset == 64 {
                self.refill();
            }
            let take = (64 - self.offset).min(out.len() - written);
            out[written..written + take]
                .copy_from_slice(&self.block[self.offset..self.offset + take]);
            self.offset += take;
            written += take;
        }
    }

    /// Produces `n` pseudorandom `u64` values.
    pub fn gen_u64_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }

    /// Uniform `u64` below `bound` via rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(&state) {
            *w = w.wrapping_add(*s);
        }
        for (i, word) in working.iter().enumerate() {
            self.block[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        self.counter = self
            .counter
            .checked_add(1)
            .expect("ChaCha20 keystream exhausted (2^38 bytes)");
        self.offset = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector: key 00..1f, nonce 000000090000004a00000000,
    /// counter 1 — first block keystream.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut prg = ChaChaPrg::new(&key, &nonce);
        prg.counter = 1; // the RFC vector starts at block counter 1
        let mut out = [0u8; 64];
        prg.fill_bytes(&mut out);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f,
            0xa3, 0x20, 0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03,
            0x04, 0x22, 0xaa, 0x9a, 0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46,
            0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2, 0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2,
            0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9, 0xcb, 0xd0, 0x83, 0xe8,
            0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn deterministic_across_instances() {
        let seed = [7u8; 32];
        let mut a = ChaChaPrg::from_seed(&seed);
        let mut b = ChaChaPrg::from_seed(&seed);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaPrg::from_seed(&[1u8; 32]);
        let mut b = ChaChaPrg::from_seed(&[2u8; 32]);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fill_bytes_chunking_invariant() {
        let seed = [9u8; 32];
        let mut whole = ChaChaPrg::from_seed(&seed);
        let mut buf_whole = [0u8; 200];
        whole.fill_bytes(&mut buf_whole);

        let mut pieces = ChaChaPrg::from_seed(&seed);
        let mut buf_pieces = [0u8; 200];
        let mut written = 0;
        for chunk in [1usize, 5, 63, 64, 67] {
            pieces.fill_bytes(&mut buf_pieces[written..written + chunk]);
            written += chunk;
        }
        assert_eq!(buf_whole, buf_pieces);
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut prg = ChaChaPrg::from_seed(&[3u8; 32]);
        for bound in [1u64, 2, 7, 100, 1 << 33] {
            for _ in 0..50 {
                assert!(prg.next_u64_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        ChaChaPrg::from_seed(&[0u8; 32]).next_u64_below(0);
    }

    #[test]
    fn bounded_sampling_roughly_uniform() {
        let mut prg = ChaChaPrg::from_seed(&[5u8; 32]);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[prg.next_u64_below(4) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} outside [800,1200]");
        }
    }
}
