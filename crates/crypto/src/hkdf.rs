//! HKDF-SHA256 (RFC 5869) — extract-then-expand key derivation.
//!
//! Turns a Diffie–Hellman shared secret (a group element, *not* a uniform
//! byte string) into uniformly pseudorandom key material, and lets the
//! masking layer derive an independent seed per `(pair, round)` via the
//! `info` parameter.

use crate::hmac::hmac_sha256;
use crate::sha256::DIGEST_LEN;

/// `HKDF-Extract(salt, ikm)` → pseudorandom key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// `HKDF-Expand(prk, info, len)` → output key material.
///
/// # Panics
///
/// Panics if `len > 255 * 32` (RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long: {len}");
    let mut okm = Vec::with_capacity(len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut msg = prev.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        prev = block.to_vec();
        okm.extend_from_slice(&block);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    okm.truncate(len);
    okm
}

/// One-shot `HKDF(salt, ikm, info, len)`.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    expand(&extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 Appendix A test vectors.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn rfc5869_case_3_empty_salt_info() {
        let ikm = [0x0b; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn info_separates_outputs() {
        let prk = extract(b"salt", b"secret");
        assert_ne!(expand(&prk, b"round-1", 32), expand(&prk, b"round-2", 32));
    }

    #[test]
    fn requested_length_honoured() {
        let prk = extract(b"s", b"k");
        for len in [0, 1, 31, 32, 33, 64, 100] {
            assert_eq!(expand(&prk, b"i", len).len(), len);
        }
    }

    #[test]
    fn expand_prefix_property() {
        // Shorter outputs are prefixes of longer ones (RFC 5869 structure).
        let prk = extract(b"s", b"k");
        let long = expand(&prk, b"i", 96);
        let short = expand(&prk, b"i", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn overlong_output_panics() {
        let prk = extract(b"s", b"k");
        let _ = expand(&prk, b"i", 255 * 32 + 1);
    }
}
