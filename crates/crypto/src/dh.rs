//! Finite-field Diffie–Hellman key agreement.
//!
//! Paper Sect. IV-A1: every data owner generates a private key `a` and
//! broadcasts `g^a` to the blockchain; each pair of owners then derives
//! the shared key `g^ab` from which per-round masks are generated.
//!
//! Two named groups ship with the crate:
//!
//! * [`DhGroup::simulation_256`] — a 256-bit prime group (the secp256k1
//!   field prime with generator 5). Fast enough to run thousands of
//!   exchanges in tests. **Simulation-grade only.**
//! * [`DhGroup2048::modp_2048`] — RFC 3526 group 14, the real-world MODP
//!   group. Exercised by a slower test to show the protocol is agnostic
//!   to group width, exactly as the paper is agnostic to the blockchain.

use crate::chacha::ChaChaPrg;
use crate::hkdf;
use numeric::uint::Uint;
use numeric::{U2048, U256};

/// A multiplicative prime group `(p, g)` for Diffie–Hellman, generic over
/// limb width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhGroupW<const LIMBS: usize> {
    /// Prime modulus.
    pub p: Uint<LIMBS>,
    /// Group generator.
    pub g: Uint<LIMBS>,
}

/// The 256-bit simulation group used throughout the workspace.
pub type DhGroup = DhGroupW<4>;
/// The 2048-bit MODP group (slow path).
pub type DhGroup2048 = DhGroupW<32>;

/// RFC 3526 group 14 modulus (2048-bit MODP).
const MODP_2048_HEX: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

impl DhGroup {
    /// The 256-bit simulation group: secp256k1's field prime, generator 5.
    ///
    /// Correct-by-construction for protocol tests (`g^ab == g^ba` holds in
    /// any group); not intended to resist cryptanalysis.
    pub fn simulation_256() -> Self {
        let p = U256::from_hex("FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F")
            .expect("static prime parses");
        Self {
            p,
            g: U256::from_u64(5),
        }
    }
}

impl DhGroup2048 {
    /// RFC 3526 group 14 (2048-bit MODP, generator 2).
    pub fn modp_2048() -> Self {
        Self {
            p: U2048::from_hex(MODP_2048_HEX).expect("static prime parses"),
            g: U2048::from_u64(2),
        }
    }
}

impl<const LIMBS: usize> DhGroupW<LIMBS> {
    /// Samples a private key uniformly in `[2, p-2]` from `prg` and
    /// derives the public key `g^x mod p`.
    pub fn generate_keypair(&self, prg: &mut ChaChaPrg) -> DhKeyPairW<LIMBS> {
        // Rejection-sample a uniform value below p-3, then shift to [2, p-2].
        let upper = self
            .p
            .checked_sub(&Uint::from_u64(3))
            .expect("p is a large prime");
        let private = loop {
            let mut bytes = vec![0u8; LIMBS * 8];
            prg.fill_bytes(&mut bytes);
            let candidate = Uint::<LIMBS>::from_be_bytes(&bytes);
            if candidate < upper {
                break candidate.wrapping_add(&Uint::from_u64(2));
            }
        };
        let public = self.g.mod_pow(&private, &self.p);
        DhKeyPairW { private, public }
    }

    /// Deterministic keypair from a 32-byte seed (used to make whole
    /// protocol runs reproducible from one experiment seed).
    pub fn keypair_from_seed(&self, seed: &[u8; 32]) -> DhKeyPairW<LIMBS> {
        let mut prg = ChaChaPrg::from_seed(seed);
        self.generate_keypair(&mut prg)
    }

    /// Computes the raw shared group element `other_pub^my_priv mod p`.
    pub fn shared_element(
        &self,
        my_private: &Uint<LIMBS>,
        other_public: &Uint<LIMBS>,
    ) -> Uint<LIMBS> {
        other_public.mod_pow(my_private, &self.p)
    }

    /// Derives a uniform 32-byte pair key from the shared group element
    /// via HKDF (group elements are not uniform bytes).
    pub fn shared_key(&self, my_private: &Uint<LIMBS>, other_public: &Uint<LIMBS>) -> [u8; 32] {
        let element = self.shared_element(my_private, other_public);
        let okm = hkdf::derive(
            b"transparent-fl/dh-pair-key",
            &element.to_be_bytes(),
            b"",
            32,
        );
        okm.try_into().expect("HKDF returned 32 bytes")
    }
}

/// A Diffie–Hellman keypair, generic over limb width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhKeyPairW<const LIMBS: usize> {
    /// Secret exponent. Kept local to the data owner in the protocol.
    pub private: Uint<LIMBS>,
    /// Public group element `g^private mod p`, broadcast on-chain.
    pub public: Uint<LIMBS>,
}

/// Keypair over the default 256-bit simulation group.
pub type DhKeyPair = DhKeyPairW<4>;

#[cfg(test)]
mod tests {
    use super::*;

    fn prg(tag: u8) -> ChaChaPrg {
        ChaChaPrg::from_seed(&[tag; 32])
    }

    #[test]
    fn key_agreement_symmetric() {
        let group = DhGroup::simulation_256();
        let alice = group.generate_keypair(&mut prg(1));
        let bob = group.generate_keypair(&mut prg(2));
        let k_ab = group.shared_key(&alice.private, &bob.public);
        let k_ba = group.shared_key(&bob.private, &alice.public);
        assert_eq!(k_ab, k_ba, "g^ab must equal g^ba");
    }

    #[test]
    fn three_party_pairwise_keys_distinct() {
        let group = DhGroup::simulation_256();
        let a = group.generate_keypair(&mut prg(1));
        let b = group.generate_keypair(&mut prg(2));
        let c = group.generate_keypair(&mut prg(3));
        let k_ab = group.shared_key(&a.private, &b.public);
        let k_ac = group.shared_key(&a.private, &c.public);
        let k_bc = group.shared_key(&b.private, &c.public);
        assert_ne!(k_ab, k_ac);
        assert_ne!(k_ab, k_bc);
        assert_ne!(k_ac, k_bc);
    }

    #[test]
    fn deterministic_from_seed() {
        let group = DhGroup::simulation_256();
        let k1 = group.keypair_from_seed(&[42u8; 32]);
        let k2 = group.keypair_from_seed(&[42u8; 32]);
        assert_eq!(k1, k2);
        let k3 = group.keypair_from_seed(&[43u8; 32]);
        assert_ne!(k1.public, k3.public);
    }

    #[test]
    fn private_key_in_range() {
        let group = DhGroup::simulation_256();
        for tag in 0..10u8 {
            let kp = group.generate_keypair(&mut prg(tag));
            assert!(kp.private >= U256::from_u64(2));
            assert!(kp.private < group.p);
        }
    }

    #[test]
    fn public_key_is_group_element() {
        let group = DhGroup::simulation_256();
        let kp = group.generate_keypair(&mut prg(9));
        assert!(kp.public < group.p);
        assert!(!kp.public.is_zero());
    }

    #[test]
    fn shared_key_uniformized_by_hkdf() {
        // The HKDF output must differ from the raw element bytes.
        let group = DhGroup::simulation_256();
        let a = group.generate_keypair(&mut prg(1));
        let b = group.generate_keypair(&mut prg(2));
        let element = group.shared_element(&a.private, &b.public);
        let key = group.shared_key(&a.private, &b.public);
        assert_ne!(key.to_vec(), element.to_be_bytes()[..32].to_vec());
    }

    #[test]
    fn modp_2048_agreement() {
        // One slow-path check that the wide group behaves identically.
        let group = DhGroup2048::modp_2048();
        let a = group.generate_keypair(&mut prg(1));
        let b = group.generate_keypair(&mut prg(2));
        assert_eq!(
            group.shared_key(&a.private, &b.public),
            group.shared_key(&b.private, &a.public)
        );
    }
}
