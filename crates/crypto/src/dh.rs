//! Finite-field Diffie–Hellman key agreement.
//!
//! Paper Sect. IV-A1: every data owner generates a private key `a` and
//! broadcasts `g^a` to the blockchain; each pair of owners then derives
//! the shared key `g^ab` from which per-round masks are generated.
//!
//! Two named groups ship with the crate:
//!
//! * [`DhGroup::simulation_256`] — a 256-bit prime group (the secp256k1
//!   field prime with generator 5). Fast enough to run thousands of
//!   exchanges in tests. **Simulation-grade only.**
//! * [`DhGroup2048::modp_2048`] — RFC 3526 group 14, the real-world MODP
//!   group. Exercised by a slower test to show the protocol is agnostic
//!   to group width, exactly as the paper is agnostic to the blockchain.
//!
//! # Montgomery residency
//!
//! A group is a *resident engine*, not a pair of numbers: construction
//! builds the [`MontgomeryCtx`] for `p` once (Newton limb inversion + the
//! R² derivation) and converts the generator into Montgomery form, so
//! every subsequent keypair generation and key agreement is pure
//! allocation-free CIOS arithmetic with fixed-window exponentiation. The
//! two named constructors memoize the fully-built group in a process-wide
//! `OnceLock`, making `DhGroup::simulation_256()` free after first use.
//! Batched agreement ([`DhGroupW::shared_keys_batch`]) fans the per-peer
//! exponentiations out on [`numeric::par`] — slot `i` is a pure function
//! of peer `i`, so results are bit-identical for any thread count.
//!
//! All fast paths are pinned against the retained naive square-and-
//! multiply oracle ([`numeric::uint::Uint::mod_pow_naive`]); windowing and
//! residency are speed choices, never numerical ones.

use std::sync::OnceLock;

use crate::chacha::ChaChaPrg;
use crate::hkdf;
use numeric::par;
use numeric::uint::{MontgomeryCtx, MontyElem, Uint};
use numeric::{U2048, U256};

/// Largest supported group width in bytes (32 limbs = 2048 bits) — the
/// size of the stack buffer [`DhGroupW::generate_keypair`] samples into.
const MAX_GROUP_BYTES: usize = 256;

/// Errors from validating a Diffie–Hellman public key.
///
/// A public key must be a canonical group element in `[2, p-2]`:
/// anything `>= p` is a non-canonical encoding, and `{0, 1, p-1}` are the
/// degenerate elements whose shared secret is predictable (0, 1, or ±1)
/// regardless of the private key — accepting one would let a malicious
/// owner force a known pair mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhKeyError {
    /// The key is `>= p` — not a canonical group element encoding.
    OutOfRange,
    /// The key is 0, 1, or p−1 — a degenerate element with a predictable
    /// shared secret.
    Degenerate,
}

impl std::fmt::Display for DhKeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfRange => write!(f, "public key is not a canonical group element (>= p)"),
            Self::Degenerate => {
                write!(f, "public key is a degenerate group element (0, 1, or p-1)")
            }
        }
    }
}

impl std::error::Error for DhKeyError {}

/// A multiplicative prime group `(p, g)` for Diffie–Hellman, generic over
/// limb width, with a resident Montgomery engine for `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhGroupW<const LIMBS: usize> {
    /// Prime modulus.
    pub p: Uint<LIMBS>,
    /// Group generator.
    pub g: Uint<LIMBS>,
    /// Montgomery engine for `p`, built once at group construction.
    ctx: MontgomeryCtx<LIMBS>,
    /// The generator in Montgomery form — every keypair derivation
    /// exponentiates this resident element directly.
    g_monty: MontyElem<LIMBS>,
}

/// The 256-bit simulation group used throughout the workspace.
pub type DhGroup = DhGroupW<4>;
/// The 2048-bit MODP group (slow path).
pub type DhGroup2048 = DhGroupW<32>;

/// RFC 3526 group 14 modulus (2048-bit MODP).
const MODP_2048_HEX: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

impl DhGroup {
    /// The 256-bit simulation group: secp256k1's field prime, generator 5.
    ///
    /// Correct-by-construction for protocol tests (`g^ab == g^ba` holds in
    /// any group); not intended to resist cryptanalysis. The fully-built
    /// group (Montgomery context included) is memoized process-wide, so
    /// calling this per round or per owner costs a copy, not a rebuild.
    pub fn simulation_256() -> Self {
        static GROUP: OnceLock<DhGroup> = OnceLock::new();
        *GROUP.get_or_init(|| {
            let p =
                U256::from_hex("FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F")
                    .expect("static prime parses");
            Self::new(p, U256::from_u64(5))
        })
    }
}

impl DhGroup2048 {
    /// RFC 3526 group 14 (2048-bit MODP, generator 2). Memoized like
    /// [`DhGroup::simulation_256`] — the 2048-bit R² derivation runs once
    /// per process.
    pub fn modp_2048() -> Self {
        static GROUP: OnceLock<DhGroup2048> = OnceLock::new();
        *GROUP.get_or_init(|| {
            Self::new(
                U2048::from_hex(MODP_2048_HEX).expect("static prime parses"),
                U2048::from_u64(2),
            )
        })
    }
}

impl<const LIMBS: usize> DhGroupW<LIMBS> {
    /// Builds a group over the odd prime `p` with generator `g`,
    /// constructing the resident Montgomery engine once.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero or even (Montgomery reduction is undefined)
    /// or wider than `MAX_GROUP_BYTES` (256 bytes = 2048 bits).
    pub fn new(p: Uint<LIMBS>, g: Uint<LIMBS>) -> Self {
        assert!(
            LIMBS * 8 <= MAX_GROUP_BYTES,
            "group width {} exceeds the supported maximum of {MAX_GROUP_BYTES} bytes",
            LIMBS * 8
        );
        let ctx = MontgomeryCtx::new(&p).expect("DH modulus must be an odd prime");
        let g_monty = ctx.to_elem(&g);
        Self { p, g, ctx, g_monty }
    }

    /// The resident Montgomery engine for `p`.
    pub fn ctx(&self) -> &MontgomeryCtx<LIMBS> {
        &self.ctx
    }

    /// The public key of `private`: `g^private mod p`, via the resident
    /// Montgomery-form generator.
    pub fn public_of(&self, private: &Uint<LIMBS>) -> Uint<LIMBS> {
        self.ctx.retrieve(&self.ctx.pow(&self.g_monty, private))
    }

    /// Samples a private key uniformly in `[2, p-2]` from `prg` and
    /// derives the public key `g^x mod p`.
    pub fn generate_keypair(&self, prg: &mut ChaChaPrg) -> DhKeyPairW<LIMBS> {
        // Rejection-sample a uniform value below p-3, then shift to [2, p-2].
        let upper = self
            .p
            .checked_sub(&Uint::from_u64(3))
            .expect("p is a large prime");
        // One stack buffer, refilled across rejection attempts. The PRG
        // byte stream (and hence every sampled key) is identical to the
        // seed-era per-attempt `vec![0u8; LIMBS * 8]` path.
        let mut buf = [0u8; MAX_GROUP_BYTES];
        let bytes = &mut buf[..LIMBS * 8];
        let private = loop {
            prg.fill_bytes(bytes);
            let candidate = Uint::<LIMBS>::from_be_bytes(bytes);
            if candidate < upper {
                break candidate.wrapping_add(&Uint::from_u64(2));
            }
        };
        let public = self.public_of(&private);
        DhKeyPairW { private, public }
    }

    /// Deterministic keypair from a 32-byte seed (used to make whole
    /// protocol runs reproducible from one experiment seed).
    pub fn keypair_from_seed(&self, seed: &[u8; 32]) -> DhKeyPairW<LIMBS> {
        let mut prg = ChaChaPrg::from_seed(seed);
        self.generate_keypair(&mut prg)
    }

    /// Checks that `key` is a canonical, non-degenerate group element in
    /// `[2, p-2]`. See [`DhKeyError`] for the rejection rules.
    pub fn validate_public_key(&self, key: &Uint<LIMBS>) -> Result<(), DhKeyError> {
        if key >= &self.p {
            return Err(DhKeyError::OutOfRange);
        }
        let p_minus_1 = self.p.wrapping_sub(&Uint::ONE);
        if key.is_zero() || key == &Uint::ONE || key == &p_minus_1 {
            return Err(DhKeyError::Degenerate);
        }
        Ok(())
    }

    /// Computes the raw shared group element `other_pub^my_priv mod p`,
    /// rejecting degenerate or out-of-range public keys.
    pub fn shared_element(
        &self,
        my_private: &Uint<LIMBS>,
        other_public: &Uint<LIMBS>,
    ) -> Result<Uint<LIMBS>, DhKeyError> {
        self.validate_public_key(other_public)?;
        Ok(self.shared_element_unchecked(my_private, other_public))
    }

    /// The exponentiation core of [`DhGroupW::shared_element`], after
    /// validation: peer key to Montgomery form, fixed-window pow, retrieve.
    fn shared_element_unchecked(
        &self,
        my_private: &Uint<LIMBS>,
        other_public: &Uint<LIMBS>,
    ) -> Uint<LIMBS> {
        let peer = self.ctx.to_elem(other_public);
        self.ctx.retrieve(&self.ctx.pow(&peer, my_private))
    }

    /// Derives a uniform 32-byte pair key from the shared group element
    /// via HKDF (group elements are not uniform bytes), rejecting
    /// degenerate or out-of-range public keys.
    pub fn shared_key(
        &self,
        my_private: &Uint<LIMBS>,
        other_public: &Uint<LIMBS>,
    ) -> Result<[u8; 32], DhKeyError> {
        self.validate_public_key(other_public)?;
        Ok(derive_pair_key(
            &self.shared_element_unchecked(my_private, other_public),
        ))
    }

    /// Batched key agreement: one owner against `peer_publics`, one
    /// exponentiation per peer fanned out on [`numeric::par`].
    ///
    /// Every peer key is validated up front; slot `i` of the result is the
    /// pair key against peer `i` — a pure function of the index, so the
    /// output is bit-identical to the sequential loop for any thread
    /// count.
    pub fn shared_keys_batch(
        &self,
        my_private: &Uint<LIMBS>,
        peer_publics: &[Uint<LIMBS>],
    ) -> Result<Vec<[u8; 32]>, DhKeyError> {
        for pk in peer_publics {
            self.validate_public_key(pk)?;
        }
        Ok(par::par_map(peer_publics, 1, |_, pk| {
            derive_pair_key(&self.shared_element_unchecked(my_private, pk))
        }))
    }

    /// Batched key agreement over explicit `(private, public)` pairs —
    /// the recovery-path shape, where each residual mask pairs a
    /// *different* reconstructed private key with a survivor's public
    /// key. Same validation and determinism contract as
    /// [`DhGroupW::shared_keys_batch`].
    pub fn shared_keys_batch_pairs(
        &self,
        pairs: &[(Uint<LIMBS>, Uint<LIMBS>)],
    ) -> Result<Vec<[u8; 32]>, DhKeyError> {
        for (_, pk) in pairs {
            self.validate_public_key(pk)?;
        }
        Ok(par::par_map(pairs, 1, |_, (private, public)| {
            derive_pair_key(&self.shared_element_unchecked(private, public))
        }))
    }
}

/// HKDF expansion of a shared group element into a uniform 32-byte pair
/// key.
fn derive_pair_key<const LIMBS: usize>(element: &Uint<LIMBS>) -> [u8; 32] {
    let okm = hkdf::derive(
        b"transparent-fl/dh-pair-key",
        &element.to_be_bytes(),
        b"",
        32,
    );
    okm.try_into().expect("HKDF returned 32 bytes")
}

/// A Diffie–Hellman keypair, generic over limb width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhKeyPairW<const LIMBS: usize> {
    /// Secret exponent. Kept local to the data owner in the protocol.
    pub private: Uint<LIMBS>,
    /// Public group element `g^private mod p`, broadcast on-chain.
    pub public: Uint<LIMBS>,
}

/// Keypair over the default 256-bit simulation group.
pub type DhKeyPair = DhKeyPairW<4>;

#[cfg(test)]
mod tests {
    use super::*;

    fn prg(tag: u8) -> ChaChaPrg {
        ChaChaPrg::from_seed(&[tag; 32])
    }

    #[test]
    fn key_agreement_symmetric() {
        let group = DhGroup::simulation_256();
        let alice = group.generate_keypair(&mut prg(1));
        let bob = group.generate_keypair(&mut prg(2));
        let k_ab = group.shared_key(&alice.private, &bob.public).unwrap();
        let k_ba = group.shared_key(&bob.private, &alice.public).unwrap();
        assert_eq!(k_ab, k_ba, "g^ab must equal g^ba");
    }

    #[test]
    fn three_party_pairwise_keys_distinct() {
        let group = DhGroup::simulation_256();
        let a = group.generate_keypair(&mut prg(1));
        let b = group.generate_keypair(&mut prg(2));
        let c = group.generate_keypair(&mut prg(3));
        let k_ab = group.shared_key(&a.private, &b.public).unwrap();
        let k_ac = group.shared_key(&a.private, &c.public).unwrap();
        let k_bc = group.shared_key(&b.private, &c.public).unwrap();
        assert_ne!(k_ab, k_ac);
        assert_ne!(k_ab, k_bc);
        assert_ne!(k_ac, k_bc);
    }

    #[test]
    fn deterministic_from_seed() {
        let group = DhGroup::simulation_256();
        let k1 = group.keypair_from_seed(&[42u8; 32]);
        let k2 = group.keypair_from_seed(&[42u8; 32]);
        assert_eq!(k1, k2);
        let k3 = group.keypair_from_seed(&[43u8; 32]);
        assert_ne!(k1.public, k3.public);
    }

    #[test]
    fn private_key_in_range() {
        let group = DhGroup::simulation_256();
        for tag in 0..10u8 {
            let kp = group.generate_keypair(&mut prg(tag));
            assert!(kp.private >= U256::from_u64(2));
            assert!(kp.private < group.p);
        }
    }

    #[test]
    fn public_key_is_group_element() {
        let group = DhGroup::simulation_256();
        let kp = group.generate_keypair(&mut prg(9));
        assert!(kp.public < group.p);
        assert!(!kp.public.is_zero());
        group.validate_public_key(&kp.public).unwrap();
    }

    #[test]
    fn resident_engine_matches_naive_oracle() {
        // The Montgomery-resident agreement path must be bit-identical to
        // the retained naive square-and-multiply ladder.
        let group = DhGroup::simulation_256();
        let a = group.generate_keypair(&mut prg(4));
        let b = group.generate_keypair(&mut prg(5));
        let fast = group.shared_element(&a.private, &b.public).unwrap();
        let naive = b.public.mod_pow_naive(&a.private, &group.p);
        assert_eq!(fast, naive);
        assert_eq!(a.public, group.g.mod_pow_naive(&a.private, &group.p));
    }

    #[test]
    fn degenerate_and_out_of_range_keys_rejected() {
        let group = DhGroup::simulation_256();
        let kp = group.generate_keypair(&mut prg(1));
        let p_minus_1 = group.p.wrapping_sub(&U256::ONE);
        for (bad, want) in [
            (U256::ZERO, DhKeyError::Degenerate),
            (U256::ONE, DhKeyError::Degenerate),
            (p_minus_1, DhKeyError::Degenerate),
            (group.p, DhKeyError::OutOfRange),
            (U256::MAX, DhKeyError::OutOfRange),
        ] {
            assert_eq!(group.validate_public_key(&bad), Err(want), "{bad:?}");
            assert_eq!(group.shared_element(&kp.private, &bad), Err(want));
            assert_eq!(group.shared_key(&kp.private, &bad), Err(want));
            assert_eq!(
                group.shared_keys_batch(&kp.private, &[kp.public, bad]),
                Err(want)
            );
        }
        // 2 and p-2 are unremarkable elements and must pass.
        group.validate_public_key(&U256::from_u64(2)).unwrap();
        group
            .validate_public_key(&group.p.wrapping_sub(&U256::from_u64(2)))
            .unwrap();
    }

    #[test]
    fn batch_agreement_matches_sequential() {
        let group = DhGroup::simulation_256();
        let me = group.generate_keypair(&mut prg(7));
        let peers: Vec<DhKeyPairW<4>> = (10..18u8)
            .map(|t| group.generate_keypair(&mut prg(t)))
            .collect();
        let peer_pubs: Vec<U256> = peers.iter().map(|kp| kp.public).collect();
        let batch = group.shared_keys_batch(&me.private, &peer_pubs).unwrap();
        for (kp, got) in peers.iter().zip(&batch) {
            assert_eq!(*got, group.shared_key(&me.private, &kp.public).unwrap());
            // And symmetric from the peer's side.
            assert_eq!(*got, group.shared_key(&kp.private, &me.public).unwrap());
        }
        // The pair-list variant agrees with the single-owner variant.
        let pairs: Vec<(U256, U256)> = peer_pubs.iter().map(|pk| (me.private, *pk)).collect();
        assert_eq!(group.shared_keys_batch_pairs(&pairs).unwrap(), batch);
    }

    #[test]
    fn shared_key_uniformized_by_hkdf() {
        // The HKDF output must differ from the raw element bytes.
        let group = DhGroup::simulation_256();
        let a = group.generate_keypair(&mut prg(1));
        let b = group.generate_keypair(&mut prg(2));
        let element = group.shared_element(&a.private, &b.public).unwrap();
        let key = group.shared_key(&a.private, &b.public).unwrap();
        assert_ne!(key.to_vec(), element.to_be_bytes()[..32].to_vec());
    }

    #[test]
    fn modp_2048_agreement() {
        // One slow-path check that the wide group behaves identically.
        let group = DhGroup2048::modp_2048();
        let a = group.generate_keypair(&mut prg(1));
        let b = group.generate_keypair(&mut prg(2));
        assert_eq!(
            group.shared_key(&a.private, &b.public).unwrap(),
            group.shared_key(&b.private, &a.public).unwrap()
        );
    }
}
