//! The secure-aggregation session (Bonawitz et al., adapted to the paper).
//!
//! Orchestrates the three protocol phases for a *fixed* cohort of parties
//! (the paper's cross-silo setting assumes every owner participates in
//! every round, Sect. III):
//!
//! 1. **Advertise** — each party registers its DH public key.
//! 2. **Mask** — a party turns its fixed-point update into a masked
//!    submission by applying the pairwise mask against every other party.
//! 3. **Aggregate** — the ring sum of all submissions; the masks
//!    telescope away and only the *sum of the cohort's updates* remains.
//!
//! The session object is deliberately symmetric: the same type drives the
//! data-owner side (produce a masked update) and the contract side
//! (aggregate submissions). The contract never holds pair keys, so it can
//! only ever see masked vectors and their cohort-level sum — this is the
//! privacy property the paper's Sect. III threat model requires.

use std::collections::BTreeMap;
use std::fmt;

use numeric::{par, FixedCodec};

use crate::dh::{DhGroup, DhKeyPair};
use crate::masking::{PairwiseMasker, PartyId};
use crate::sha256::sha256;

/// Minimum ring elements per worker thread when expanding or summing
/// mask vectors. ChaCha expansion costs a few ns per element, so below
/// this the thread hand-off dominates; one paper-scale pair mask
/// (dim ≈ 650) stays inline while multi-pair and high-dimensional work
/// fans out.
const MIN_RING_ELEMS_PER_THREAD: usize = 2048;

/// Errors from driving a [`SecureAggSession`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureAggError {
    /// A party id was registered twice.
    DuplicateParty(PartyId),
    /// An operation referenced a party that never advertised a key.
    UnknownParty(PartyId),
    /// Fewer than two parties: masking would be a no-op and the single
    /// update would be exposed.
    CohortTooSmall(usize),
    /// A masked submission had the wrong dimension.
    DimensionMismatch {
        /// Expected vector length.
        expected: usize,
        /// Received vector length.
        got: usize,
    },
    /// Aggregation was requested before every party submitted.
    MissingSubmissions(Vec<PartyId>),
    /// The same party submitted twice in one round.
    DuplicateSubmission(PartyId),
    /// A peer advertised a degenerate or out-of-range public key; deriving
    /// a pair secret against it would yield a predictable mask.
    InvalidPeerKey(PartyId),
}

impl fmt::Display for SecureAggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateParty(id) => write!(f, "party {id} already registered"),
            Self::UnknownParty(id) => write!(f, "party {id} is not registered"),
            Self::CohortTooSmall(n) => {
                write!(f, "secure aggregation needs >= 2 parties, got {n}")
            }
            Self::DimensionMismatch { expected, got } => {
                write!(f, "update dimension {got} != expected {expected}")
            }
            Self::MissingSubmissions(ids) => {
                write!(f, "missing submissions from parties {ids:?}")
            }
            Self::DuplicateSubmission(id) => {
                write!(f, "party {id} already submitted this round")
            }
            Self::InvalidPeerKey(id) => {
                write!(f, "party {id} advertised an invalid public key")
            }
        }
    }
}

impl std::error::Error for SecureAggError {}

/// Public session state: the advertised keys, visible to everyone
/// (including the blockchain).
#[derive(Debug, Clone, Default)]
pub struct KeyDirectory {
    keys: BTreeMap<PartyId, numeric::U256>,
}

impl KeyDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a party's public key.
    pub fn advertise(
        &mut self,
        party: PartyId,
        public: numeric::U256,
    ) -> Result<(), SecureAggError> {
        if self.keys.contains_key(&party) {
            return Err(SecureAggError::DuplicateParty(party));
        }
        self.keys.insert(party, public);
        Ok(())
    }

    /// Public key of `party`.
    pub fn public_key(&self, party: PartyId) -> Option<&numeric::U256> {
        self.keys.get(&party)
    }

    /// All registered party ids, ascending.
    pub fn parties(&self) -> Vec<PartyId> {
        self.keys.keys().copied().collect()
    }

    /// All `(party, public key)` entries, ascending by id — the canonical
    /// input to [`key_epoch`].
    pub fn entries(&self) -> Vec<(PartyId, numeric::U256)> {
        self.keys.iter().map(|(&id, &pk)| (id, pk)).collect()
    }

    /// Number of registered parties.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if nobody registered yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Digest of a full advertised key set, used as the [`PairSecretCache`]
/// epoch.
///
/// Domain-separated SHA-256 over `(party id, public key)` in the given
/// order; callers pass keys ascending by party id (the canonical on-chain
/// order), so the epoch is a pure function of *who advertised what* — it
/// is stable across rounds while keys stand, and rolls the moment any
/// owner joins, leaves, or rotates a key.
pub fn key_epoch(keys: &[(PartyId, numeric::U256)]) -> [u8; 32] {
    let mut bytes = Vec::with_capacity(32 + keys.len() * 36);
    bytes.extend_from_slice(b"transparent-fl/key-epoch/v1");
    for (id, public) in keys {
        bytes.extend_from_slice(&id.to_le_bytes());
        bytes.extend_from_slice(&public.to_be_bytes());
    }
    sha256(&bytes)
}

/// Per-owner cache of derived pair secrets, bound to a *key epoch*.
///
/// Pair keys depend only on `(my private, peer public)`, so while the
/// advertised key set stands, re-deriving them every round is pure waste —
/// one modular exponentiation per peer. The cache is keyed twice over:
///
/// * the **epoch** (see [`key_epoch`]) — a digest of the full advertised
///   key set; any change clears the cache wholesale, and
/// * the **peer public key** stored with each entry — a lookup only hits
///   when the stored key matches the directory's current key bit-for-bit.
///
/// A rotated or tampered key therefore can never serve a stale secret:
/// rotation rolls the epoch, and even a stale epoch value cannot alias
/// because the per-entry key comparison fails. Cached pair keys are the
/// exact bytes the cold path derives, so a warm run's masked submissions
/// (and every state root downstream) are bit-identical to a cold run's.
#[derive(Debug, Clone, Default)]
pub struct PairSecretCache {
    epoch: Option<[u8; 32]>,
    entries: BTreeMap<PartyId, (numeric::U256, [u8; 32])>,
}

impl PairSecretCache {
    /// Creates an empty (cold) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds the cache to `epoch`, clearing all entries if it changed.
    fn roll_epoch(&mut self, epoch: [u8; 32]) {
        if self.epoch != Some(epoch) {
            self.entries.clear();
            self.epoch = Some(epoch);
        }
    }

    /// The cached pair key against `peer`, only if the stored public key
    /// matches `peer_pub` exactly.
    fn lookup(&self, peer: PartyId, peer_pub: &numeric::U256) -> Option<[u8; 32]> {
        match self.entries.get(&peer) {
            Some((stored_pub, key)) if stored_pub == peer_pub => Some(*key),
            _ => None,
        }
    }

    fn insert(&mut self, peer: PartyId, peer_pub: numeric::U256, key: [u8; 32]) {
        self.entries.insert(peer, (peer_pub, key));
    }

    /// Number of cached pair secrets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pair secret is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One party's private view of a secure-aggregation cohort.
///
/// Owns the party's DH keypair and the pair keys derived against every
/// other cohort member. Produces masked submissions.
pub struct PartyState {
    id: PartyId,
    maskers: BTreeMap<PartyId, PairwiseMasker>,
}

impl PartyState {
    /// Derives pair keys for `me` against every other party in the
    /// directory, one batched exponentiation fan-out over all peers
    /// ([`DhGroup::shared_keys_batch`]).
    pub fn derive(
        group: &DhGroup,
        me: PartyId,
        keypair: &DhKeyPair,
        directory: &KeyDirectory,
    ) -> Result<Self, SecureAggError> {
        Self::derive_cached(
            group,
            me,
            keypair,
            directory,
            [0u8; 32],
            &mut PairSecretCache::new(),
        )
    }

    /// [`PartyState::derive`] through a [`PairSecretCache`]: peers whose
    /// `(epoch, public key)` entry is warm skip the exponentiation
    /// entirely; only the misses go through the batched agreement.
    ///
    /// `epoch` must come from [`key_epoch`] over the full advertised key
    /// set. The derived pair keys — warm or cold — are bit-identical, so
    /// masked submissions and state roots never depend on cache state.
    pub fn derive_cached(
        group: &DhGroup,
        me: PartyId,
        keypair: &DhKeyPair,
        directory: &KeyDirectory,
        epoch: [u8; 32],
        cache: &mut PairSecretCache,
    ) -> Result<Self, SecureAggError> {
        if directory.len() < 2 {
            return Err(SecureAggError::CohortTooSmall(directory.len()));
        }
        if directory.public_key(me).is_none() {
            return Err(SecureAggError::UnknownParty(me));
        }
        cache.roll_epoch(epoch);
        // Split peers into cache hits and misses. Validation happens here,
        // per peer, so a bad key is attributed to its owner (the batch API
        // reports the error but not the offender).
        let mut pair_keys: BTreeMap<PartyId, [u8; 32]> = BTreeMap::new();
        let mut misses: Vec<(PartyId, numeric::U256)> = Vec::new();
        for other in directory.parties() {
            if other == me {
                continue;
            }
            let other_pub = *directory.public_key(other).expect("listed party has a key");
            if let Some(key) = cache.lookup(other, &other_pub) {
                pair_keys.insert(other, key);
            } else {
                group
                    .validate_public_key(&other_pub)
                    .map_err(|_| SecureAggError::InvalidPeerKey(other))?;
                misses.push((other, other_pub));
            }
        }
        // Pairwise key agreement is one modular exponentiation per peer —
        // the dominant setup cost — and each pair key depends only on the
        // peer's public key, so the misses batch out across cores.
        if !misses.is_empty() {
            let peer_pubs: Vec<numeric::U256> = misses.iter().map(|&(_, pk)| pk).collect();
            let fresh = group
                .shared_keys_batch(&keypair.private, &peer_pubs)
                .expect("peer keys validated above");
            for ((other, other_pub), key) in misses.into_iter().zip(fresh) {
                cache.insert(other, other_pub, key);
                pair_keys.insert(other, key);
            }
        }
        let maskers = pair_keys
            .into_iter()
            .map(|(other, pair_key)| (other, PairwiseMasker::new(pair_key)))
            .collect();
        Ok(Self { id: me, maskers })
    }

    /// Party id.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// Produces the masked fixed-point submission for `round`.
    ///
    /// `weights` are the party's raw model update (plaintext, local only).
    pub fn masked_update(&self, codec: &FixedCodec, round: u64, weights: &[f64]) -> Vec<u64> {
        self.mask_ring_vector(round, codec.encode_vec(weights))
    }

    /// Masks an already-encoded ring vector (used by group-restricted
    /// aggregation where encoding happens upstream).
    ///
    /// Each pair's mask expansion is an independent ChaCha keystream, so
    /// for enough total work the expansions fan out across cores and are
    /// folded in ascending peer order. Ring addition is associative and
    /// commutative (wrapping `u64`), so the masked vector is bit-identical
    /// to the sequential fold for any thread count.
    pub fn mask_ring_vector(&self, round: u64, mut update: Vec<u64>) -> Vec<u64> {
        let dim = update.len();
        if self.maskers.len() * dim < 2 * MIN_RING_ELEMS_PER_THREAD {
            for (&other, masker) in &self.maskers {
                masker.apply(self.id, other, round, &mut update);
            }
            return update;
        }
        let peers: Vec<(PartyId, &PairwiseMasker)> =
            self.maskers.iter().map(|(&other, m)| (other, m)).collect();
        let masks = par::par_map(&peers, 1, |_, (_, masker)| {
            masker.mask_for_round(round, dim)
        });
        for ((other, _), mask) in peers.iter().zip(&masks) {
            crate::masking::apply_expanded(self.id, *other, mask, &mut update);
        }
        update
    }
}

/// The aggregator side: collects masked submissions for one round and
/// produces the unmasked *sum* once the cohort is complete.
///
/// Holds no key material — this is what runs inside the smart contract.
#[derive(Debug, Clone)]
pub struct SecureAggSession {
    expected: Vec<PartyId>,
    dim: usize,
    submissions: BTreeMap<PartyId, Vec<u64>>,
}

impl SecureAggSession {
    /// Starts a round for the given cohort and update dimension.
    pub fn new(cohort: &[PartyId], dim: usize) -> Result<Self, SecureAggError> {
        if cohort.len() < 2 {
            return Err(SecureAggError::CohortTooSmall(cohort.len()));
        }
        let mut expected = cohort.to_vec();
        expected.sort_unstable();
        expected.dedup();
        if expected.len() != cohort.len() {
            // Find the duplicate for a useful error.
            let mut seen = std::collections::BTreeSet::new();
            for &id in cohort {
                if !seen.insert(id) {
                    return Err(SecureAggError::DuplicateParty(id));
                }
            }
        }
        Ok(Self {
            expected,
            dim,
            submissions: BTreeMap::new(),
        })
    }

    /// Records a masked submission.
    pub fn submit(&mut self, party: PartyId, masked: Vec<u64>) -> Result<(), SecureAggError> {
        if !self.expected.contains(&party) {
            return Err(SecureAggError::UnknownParty(party));
        }
        if masked.len() != self.dim {
            return Err(SecureAggError::DimensionMismatch {
                expected: self.dim,
                got: masked.len(),
            });
        }
        if self.submissions.contains_key(&party) {
            return Err(SecureAggError::DuplicateSubmission(party));
        }
        self.submissions.insert(party, masked);
        Ok(())
    }

    /// Parties that have not submitted yet.
    pub fn pending(&self) -> Vec<PartyId> {
        self.expected
            .iter()
            .copied()
            .filter(|id| !self.submissions.contains_key(id))
            .collect()
    }

    /// True when every expected party has submitted.
    pub fn is_complete(&self) -> bool {
        self.submissions.len() == self.expected.len()
    }

    /// Ring sum of all submissions. The pairwise masks cancel, leaving
    /// `Σ encode(w_i)`.
    ///
    /// For high-dimensional models the sum is chunked over coordinates
    /// and computed on the fork-join layer; each coordinate always sums
    /// parties in ascending id order (and wrapping `u64` addition is
    /// exact), so the aggregate is bit-identical for any thread count.
    pub fn aggregate(&self) -> Result<Vec<u64>, SecureAggError> {
        let missing = self.pending();
        if !missing.is_empty() {
            return Err(SecureAggError::MissingSubmissions(missing));
        }
        let mut acc = vec![0u64; self.dim];
        if self.submissions.len() * self.dim < 2 * MIN_RING_ELEMS_PER_THREAD {
            for masked in self.submissions.values() {
                FixedCodec::ring_add_assign(&mut acc, masked);
            }
            return Ok(acc);
        }
        let submissions: Vec<&Vec<u64>> = self.submissions.values().collect();
        let min_chunk = MIN_RING_ELEMS_PER_THREAD / self.submissions.len().max(1);
        par::par_fill_with(&mut acc, min_chunk.max(1), |start, chunk| {
            let len = chunk.len();
            for masked in &submissions {
                for (a, m) in chunk.iter_mut().zip(&masked[start..start + len]) {
                    *a = a.wrapping_add(*m);
                }
            }
        });
        Ok(acc)
    }

    /// Aggregates and decodes to the cohort *average* in `f64`.
    pub fn aggregate_mean(&self, codec: &FixedCodec) -> Result<Vec<f64>, SecureAggError> {
        let ring = self.aggregate()?;
        let n = self.expected.len();
        Ok(ring.iter().map(|&r| codec.decode_avg(r, n)).collect())
    }

    /// The masked submission of one party, exactly as an on-chain
    /// observer would see it.
    pub fn observed_submission(&self, party: PartyId) -> Option<&[u64]> {
        self.submissions.get(&party).map(Vec::as_slice)
    }
}

/// Convenience: runs one complete secure-aggregation round for a cohort of
/// plaintext weight vectors and returns the decoded mean. Used pervasively
/// by the FL layer and tests.
///
/// `seeds[i]` deterministically generates party `i`'s DH keypair.
pub fn secure_mean(
    group: &DhGroup,
    codec: &FixedCodec,
    round: u64,
    weights: &[Vec<f64>],
    seeds: &[[u8; 32]],
) -> Result<Vec<f64>, SecureAggError> {
    assert_eq!(weights.len(), seeds.len(), "one seed per party");
    let n = weights.len();
    if n < 2 {
        return Err(SecureAggError::CohortTooSmall(n));
    }
    let dim = weights[0].len();

    let keypairs: Vec<DhKeyPair> = seeds
        .iter()
        .map(|seed| group.keypair_from_seed(seed))
        .collect();

    let mut directory = KeyDirectory::new();
    for (i, kp) in keypairs.iter().enumerate() {
        directory.advertise(i as PartyId, kp.public)?;
    }

    let cohort: Vec<PartyId> = (0..n as PartyId).collect();
    let mut session = SecureAggSession::new(&cohort, dim)?;
    for (i, (w, kp)) in weights.iter().zip(&keypairs).enumerate() {
        let party = PartyState::derive(group, i as PartyId, kp, &directory)?;
        session.submit(i as PartyId, party.masked_update(codec, round, w))?;
    }
    session.aggregate_mean(codec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn group() -> DhGroup {
        DhGroup::simulation_256()
    }

    fn seeds(n: usize) -> Vec<[u8; 32]> {
        (0..n).map(|i| [i as u8 + 1; 32]).collect()
    }

    #[test]
    fn three_party_mean_matches_plaintext() {
        let codec = FixedCodec::default();
        let weights = vec![
            vec![1.0, -2.0, 3.5],
            vec![0.5, 0.5, 0.5],
            vec![-1.5, 1.5, 2.0],
        ];
        let mean = secure_mean(&group(), &codec, 0, &weights, &seeds(3)).unwrap();
        let expect = [0.0, 0.0, 2.0];
        for (m, e) in mean.iter().zip(expect) {
            assert!((m - e).abs() < 1e-6, "got {m}, want {e}");
        }
    }

    #[test]
    fn two_party_minimum_cohort() {
        let codec = FixedCodec::default();
        let weights = vec![vec![4.0], vec![2.0]];
        let mean = secure_mean(&group(), &codec, 1, &weights, &seeds(2)).unwrap();
        assert!((mean[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn single_party_rejected() {
        let codec = FixedCodec::default();
        let err = secure_mean(&group(), &codec, 0, &[vec![1.0]], &seeds(1));
        assert_eq!(err.unwrap_err(), SecureAggError::CohortTooSmall(1));
    }

    #[test]
    fn masked_submission_differs_from_plaintext() {
        let codec = FixedCodec::default();
        let g = group();
        let kps: Vec<DhKeyPair> = seeds(2).iter().map(|s| g.keypair_from_seed(s)).collect();
        let mut dir = KeyDirectory::new();
        dir.advertise(0, kps[0].public).unwrap();
        dir.advertise(1, kps[1].public).unwrap();
        let party = PartyState::derive(&g, 0, &kps[0], &dir).unwrap();
        let raw = codec.encode_vec(&[1.0, 2.0, 3.0]);
        let masked = party.masked_update(&codec, 0, &[1.0, 2.0, 3.0]);
        assert_ne!(raw, masked, "submission must be masked");
    }

    #[test]
    fn per_round_masks_differ() {
        let codec = FixedCodec::default();
        let g = group();
        let kps: Vec<DhKeyPair> = seeds(2).iter().map(|s| g.keypair_from_seed(s)).collect();
        let mut dir = KeyDirectory::new();
        dir.advertise(0, kps[0].public).unwrap();
        dir.advertise(1, kps[1].public).unwrap();
        let party = PartyState::derive(&g, 0, &kps[0], &dir).unwrap();
        let r0 = party.masked_update(&codec, 0, &[1.0]);
        let r1 = party.masked_update(&codec, 1, &[1.0]);
        assert_ne!(r0, r1, "round must refresh masks");
    }

    #[test]
    fn warm_cache_matches_cold_derive_and_rolls_on_rotation() {
        let codec = FixedCodec::default();
        let g = group();
        let n = 4usize;
        let kps: Vec<DhKeyPair> = seeds(n).iter().map(|s| g.keypair_from_seed(s)).collect();
        let mut dir = KeyDirectory::new();
        for (i, kp) in kps.iter().enumerate() {
            dir.advertise(i as PartyId, kp.public).unwrap();
        }
        let epoch = key_epoch(&dir.entries());
        let mut cache = PairSecretCache::new();
        let cold = PartyState::derive(&g, 0, &kps[0], &dir).unwrap();
        let first = PartyState::derive_cached(&g, 0, &kps[0], &dir, epoch, &mut cache).unwrap();
        assert_eq!(cache.len(), n - 1);
        let warm = PartyState::derive_cached(&g, 0, &kps[0], &dir, epoch, &mut cache).unwrap();
        let w = [0.25, -1.5, 3.0];
        let want = cold.masked_update(&codec, 3, &w);
        assert_eq!(want, first.masked_update(&codec, 3, &w));
        assert_eq!(want, warm.masked_update(&codec, 3, &w));

        // Rotating one key rolls the epoch; the warm cache is cleared and
        // the fresh derivation reflects the rotated key.
        let rotated = g.keypair_from_seed(&[99u8; 32]);
        let mut dir2 = KeyDirectory::new();
        dir2.advertise(0, kps[0].public).unwrap();
        dir2.advertise(1, rotated.public).unwrap();
        for (i, kp) in kps.iter().enumerate().skip(2) {
            dir2.advertise(i as PartyId, kp.public).unwrap();
        }
        let epoch2 = key_epoch(&dir2.entries());
        assert_ne!(epoch, epoch2, "rotation must roll the epoch");
        let fresh = PartyState::derive_cached(&g, 0, &kps[0], &dir2, epoch2, &mut cache).unwrap();
        let expect = PartyState::derive(&g, 0, &kps[0], &dir2).unwrap();
        assert_eq!(
            fresh.masked_update(&codec, 3, &w),
            expect.masked_update(&codec, 3, &w)
        );
        assert_ne!(fresh.masked_update(&codec, 3, &w), want);
    }

    #[test]
    fn stale_cache_entry_never_served() {
        // Even if a caller wrongly reuses an old epoch after a peer key
        // changed, the per-entry public-key comparison forces a fresh
        // derivation — a stale secret cannot alias.
        let codec = FixedCodec::default();
        let g = group();
        let kps: Vec<DhKeyPair> = seeds(3).iter().map(|s| g.keypair_from_seed(s)).collect();
        let mut dir = KeyDirectory::new();
        for (i, kp) in kps.iter().enumerate() {
            dir.advertise(i as PartyId, kp.public).unwrap();
        }
        let epoch = key_epoch(&dir.entries());
        let mut cache = PairSecretCache::new();
        PartyState::derive_cached(&g, 0, &kps[0], &dir, epoch, &mut cache).unwrap();

        let rotated = g.keypair_from_seed(&[77u8; 32]);
        let mut dir2 = KeyDirectory::new();
        dir2.advertise(0, kps[0].public).unwrap();
        dir2.advertise(1, rotated.public).unwrap();
        dir2.advertise(2, kps[2].public).unwrap();
        // Deliberately reuse the stale epoch.
        let got = PartyState::derive_cached(&g, 0, &kps[0], &dir2, epoch, &mut cache).unwrap();
        let expect = PartyState::derive(&g, 0, &kps[0], &dir2).unwrap();
        let w = [1.0, 2.0];
        assert_eq!(
            got.masked_update(&codec, 0, &w),
            expect.masked_update(&codec, 0, &w)
        );
    }

    #[test]
    fn invalid_peer_key_attributed_to_offender() {
        let g = group();
        let kps: Vec<DhKeyPair> = seeds(2).iter().map(|s| g.keypair_from_seed(s)).collect();
        let mut dir = KeyDirectory::new();
        dir.advertise(0, kps[0].public).unwrap();
        dir.advertise(7, numeric::U256::ONE).unwrap();
        assert_eq!(
            PartyState::derive(&g, 0, &kps[0], &dir).err(),
            Some(SecureAggError::InvalidPeerKey(7))
        );
    }

    #[test]
    fn session_errors() {
        let mut s = SecureAggSession::new(&[0, 1, 2], 2).unwrap();
        assert_eq!(
            s.submit(9, vec![0, 0]),
            Err(SecureAggError::UnknownParty(9))
        );
        assert_eq!(
            s.submit(0, vec![0]),
            Err(SecureAggError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        );
        s.submit(0, vec![1, 2]).unwrap();
        assert_eq!(
            s.submit(0, vec![1, 2]),
            Err(SecureAggError::DuplicateSubmission(0))
        );
        assert_eq!(
            s.aggregate(),
            Err(SecureAggError::MissingSubmissions(vec![1, 2]))
        );
        assert_eq!(s.pending(), vec![1, 2]);
        assert!(!s.is_complete());
    }

    #[test]
    fn duplicate_cohort_rejected() {
        assert_eq!(
            SecureAggSession::new(&[0, 1, 1], 1).unwrap_err(),
            SecureAggError::DuplicateParty(1)
        );
    }

    #[test]
    fn directory_duplicate_advertise() {
        let mut dir = KeyDirectory::new();
        dir.advertise(0, numeric::U256::from_u64(1)).unwrap();
        assert_eq!(
            dir.advertise(0, numeric::U256::from_u64(2)),
            Err(SecureAggError::DuplicateParty(0))
        );
    }

    #[test]
    fn observer_sees_only_masked_data() {
        // Reconstruct the observer's view: per-party submissions plus the
        // final sum. No submission equals the plaintext encoding.
        let codec = FixedCodec::default();
        let g = group();
        let n = 4;
        let weights: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, -(i as f64)]).collect();
        let kps: Vec<DhKeyPair> = seeds(n).iter().map(|s| g.keypair_from_seed(s)).collect();
        let mut dir = KeyDirectory::new();
        for (i, kp) in kps.iter().enumerate() {
            dir.advertise(i as PartyId, kp.public).unwrap();
        }
        let cohort: Vec<PartyId> = (0..n as PartyId).collect();
        let mut session = SecureAggSession::new(&cohort, 2).unwrap();
        for (i, kp) in kps.iter().enumerate() {
            let party = PartyState::derive(&g, i as PartyId, kp, &dir).unwrap();
            session
                .submit(i as PartyId, party.masked_update(&codec, 7, &weights[i]))
                .unwrap();
        }
        for (i, w) in weights.iter().enumerate() {
            let observed = session.observed_submission(i as PartyId).unwrap();
            assert_ne!(observed, codec.encode_vec(w).as_slice());
        }
        // But the aggregate is exact.
        let mean = session.aggregate_mean(&codec).unwrap();
        assert!((mean[0] - 1.5).abs() < 1e-6);
        assert!((mean[1] + 1.5).abs() < 1e-6);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_secure_mean_matches_plain_mean(
            n in 2usize..6,
            dim in 1usize..8,
            round in 0u64..100,
            base in -100.0f64..100.0,
        ) {
            let codec = FixedCodec::default();
            let weights: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..dim).map(|d| base + (i * dim + d) as f64 * 0.25).collect())
                .collect();
            let mean =
                secure_mean(&group(), &codec, round, &weights, &seeds(n)).unwrap();
            for d in 0..dim {
                let plain: f64 =
                    weights.iter().map(|w| w[d]).sum::<f64>() / n as f64;
                prop_assert!((mean[d] - plain).abs() < 1e-5);
            }
        }
    }
}
