//! Simulation-grade cryptographic substrate for transparent-fl.
//!
//! Implements every primitive the paper's secure-aggregation layer
//! (Sect. IV-A1, following Bonawitz et al. CCS'17) relies on:
//!
//! * [`sha256`] — SHA-256, the hash used for transaction/block digests and
//!   as the compression core of HMAC/HKDF.
//! * [`hmac`] / [`hkdf`] — keyed hashing and key derivation, turning
//!   Diffie–Hellman shared secrets into per-round PRG seeds.
//! * [`chacha`] — a deterministic ChaCha20 keystream generator; the
//!   `PRNG(g^ab, r)` of the paper.
//! * [`dh`] — discrete-log Diffie–Hellman key agreement over named prime
//!   groups (a fast 256-bit simulation group and RFC 3526 MODP-2048).
//! * [`masking`] — pairwise mask derivation with the canonical add/sub
//!   orientation so that masks cancel in the aggregate.
//! * [`secure_agg`] — the full secure-aggregation session: key exchange,
//!   masked submission, aggregate-and-unmask.
//! * [`shamir`] — Shamir secret sharing over a prime field, the
//!   dropout-recovery extension of the Bonawitz protocol.
//!
//! # Security disclaimer
//!
//! This crate reproduces the *protocol logic* of the paper faithfully, but
//! it is a research simulation: arithmetic is not constant-time, the
//! default DH group is only 256 bits, and no side-channel hardening is
//! attempted. Do not reuse it as a production cryptography library.

// `deny` instead of `forbid`: the ChaCha20 block function has an
// explicit-SIMD backend (`chacha::simd::x86`) that needs `core::arch`
// intrinsics. That module carries the only `#[allow(unsafe_code)]` in the
// workspace, with the safety argument documented inline and the output
// pinned byte-for-byte against the scalar path by tests.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
pub mod dh;
pub mod dropout;
pub mod hkdf;
pub mod hmac;
pub mod masking;
pub mod secure_agg;
pub mod sha256;
pub mod shamir;

pub use chacha::ChaChaPrg;
pub use dh::{DhGroup, DhKeyError, DhKeyPair};
pub use masking::PairwiseMasker;
pub use secure_agg::{key_epoch, PairSecretCache, SecureAggError, SecureAggSession};
pub use sha256::Sha256;
