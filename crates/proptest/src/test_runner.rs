//! Deterministic test runner state.

/// Per-suite configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the offline suite
        // fast while still exercising a meaningful input spread.
        Self { cases: 64 }
    }
}

/// Prints the generated inputs of the in-flight case if it panics, so a
/// failing property is reproducible from the test log.
pub struct CaseGuard(pub String);

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest case failed: {}", self.0);
        }
    }
}

/// Deterministic splitmix64 generator seeded from the test name, so every
/// run (and every machine) sees the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary tag (the test name).
    pub fn deterministic(tag: &str) -> Self {
        // FNV-1a over the tag bytes gives a well-spread 64-bit seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for &b in tag.as_bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next pseudo-random `u64` (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next pseudo-random `u128`.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_tag() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
