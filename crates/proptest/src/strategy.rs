//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of deterministic pseudo-random values of type `Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (mirrors `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                if span == 0 {
                    // Full-domain inclusive range.
                    return <$t>::arbitrary(rng);
                }
                lo + (rng.next_u128() % span) as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u128() % (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut TestRng) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u128::MAX {
            return u128::arbitrary(rng);
        }
        lo + rng.next_u128() % (hi - lo + 1)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = rng.next_f64();
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Collection sizes: a fixed length or a half-open range of lengths.
pub trait SizeRange {
    /// Picks a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

/// `proptest::collection::vec`: a `Vec` of values from `element`, with a
/// length drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
