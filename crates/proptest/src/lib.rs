//! Offline property-testing shim.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the (small) subset of the `proptest` API the workspace's
//! test-suite uses, with the same names and call shapes:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! * [`strategy::Strategy`] with `prop_map`, range strategies over the
//!   primitive numeric types, `any::<T>()`, and `collection::vec`.
//!
//! Generation is a deterministic splitmix64 stream seeded from the test
//! name, so failures reproduce across runs and machines. There is no
//! shrinking: a failing case panics with the generated inputs' debug
//! representation instead.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    pub use crate::strategy::vec;
}

/// The strategy/assert prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests over generated inputs.
///
/// Mirrors `proptest::proptest!`: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a `#[test]` that runs the body for `cases` generated
/// inputs (default [`test_runner::ProptestConfig::default`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (#[test] $($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) #[test] $($rest)*);
    };
    (@impl ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let _guard = $crate::test_runner::CaseGuard(format!(
                        concat!("[case {}]", $(concat!(" ", stringify!($arg), " = {:?}")),+),
                        case, $(&$arg),+
                    ));
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// The real proptest retries with fresh inputs; this shim `continue`s to
/// the next generated case. Because the property body is expanded
/// directly inside the case loop, `prop_assume!` must sit at the body's
/// top level (not inside a user loop) — which is how the workspace's
/// tests use it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}
