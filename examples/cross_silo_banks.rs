//! Cross-silo scenario from the paper's introduction: mutually
//! distrusting organizations (think banks building a shared fraud model)
//! with *unequal data quality*, who need a transparent record of who
//! contributed what before agreeing to share profits.
//!
//! Nine owners as in the paper's evaluation; owner 0 holds the cleanest
//! data and owner 8 the noisiest (σ·i feature noise). Three federated
//! rounds run on-chain; the final report shows that the contribution
//! ledger tracks data quality, and how the m knob changes the resolution
//! of that ledger.
//!
//! ```text
//! cargo run --release --example cross_silo_banks
//! ```

use fedchain::config::FlConfig;
use fedchain::protocol::FlProtocol;
use fl_ml::dataset::SyntheticDigits;
use numeric::stats::descending_ranks;

fn run_with_groups(num_groups: usize) -> (Vec<f64>, Vec<f64>) {
    let mut config = FlConfig::paper_setting();
    config.num_groups = num_groups;
    config.rounds = 3;
    config.sigma = 4.0; // strongly diverse data quality across the nine banks
    config.data = SyntheticDigits {
        instances: 2000, // keep the example snappy
        ..config.data
    };
    config.train.epochs = 10;

    let mut protocol = FlProtocol::new(config).expect("valid configuration");
    let report = protocol.run().expect("honest majority commits");
    (report.per_owner_sv, report.accuracy_history)
}

fn main() {
    println!("nine banks, increasing feature noise with bank index (σ·i)\n");

    for m in [3usize, 9] {
        let (sv, accuracy) = run_with_groups(m);
        println!("m = {m} groups — accuracy per round: {accuracy:?}");
        let ranks = descending_ranks(&sv);
        let max = sv.iter().cloned().fold(f64::EPSILON, f64::max);
        for (bank, value) in sv.iter().enumerate() {
            let bar_len = ((value.max(0.0) / max) * 50.0) as usize;
            println!(
                "  bank {bank} (noise σ·{bank}): v = {value:+.4}  rank {}  {}",
                ranks[bank] + 1,
                "#".repeat(bar_len)
            );
        }
        println!();
    }

    println!(
        "higher m sharpens the per-bank resolution (paper Sect. IV-B) —\n\
         with m = 9 each bank's SV is individually visible, at the cost of\n\
         revealing its individual model update on-chain."
    );
}
