//! Quickstart: run the whole paper pipeline in one call.
//!
//! Builds a 4-owner cross-silo federation on a small synthetic digits
//! dataset, runs one federated round through the blockchain (secure
//! aggregation + on-chain GroupSV evaluation), and prints each owner's
//! contribution and reward.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedchain::config::FlConfig;
use fedchain::protocol::FlProtocol;
use fedchain::rewards::{allocate, NegativePolicy};

fn main() {
    // The demo configuration: 4 owners, 2 groups, 1 round, 600 instances.
    let config = FlConfig::quick_demo();
    println!(
        "federation: {} owners, {} groups, {} round(s), {} instances",
        config.num_owners, config.num_groups, config.rounds, config.data.instances
    );

    let mut protocol = FlProtocol::new(config).expect("valid configuration");
    let report = protocol.run().expect("honest majority commits");

    println!(
        "\nchain: {} blocks committed, {} gas burned",
        report.blocks, report.total_gas.0
    );
    println!(
        "global model accuracy after round 0: {:.4}",
        report.accuracy_history[0]
    );

    println!("\ncontributions (GroupSV, evaluated on-chain):");
    for (owner, sv) in report.per_owner_sv.iter().enumerate() {
        println!("  owner {owner}: v = {sv:+.4}");
    }

    let payouts = allocate(1_000.0, &report.per_owner_sv, NegativePolicy::ClampZero);
    println!("\nreward split of a 1000-token budget:");
    for (owner, pay) in payouts.iter().enumerate() {
        println!("  owner {owner}: {pay:.1} tokens");
    }

    // Everything above is auditable: each miner's chain verifies.
    let engine = protocol.engine();
    for id in 0..4u32 {
        let store = engine.store_of(id).expect("miner exists");
        assert_eq!(
            store.verify_chain(),
            Ok(()),
            "miner {id}'s chain must verify"
        );
    }
    println!("\nall 4 miner replicas verified the chain independently ✓");
}
