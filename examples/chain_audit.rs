//! Independent auditing: replay the chain, verify every state root, and
//! check a single transaction's inclusion as a light client — the
//! "transparent, verifiable" claim of the paper, exercised by an outsider
//! who took no part in training.
//!
//! ```text
//! cargo run --release --example chain_audit
//! ```

use fedchain::audit::replay_chain;
use fedchain::config::FlConfig;
use fedchain::protocol::FlProtocol;
use fl_chain::light::HeaderChain;
use fl_chain::merkle::MerkleTree;
use fl_chain::tx::Transaction;

fn main() {
    // Someone ran a federation…
    let config = FlConfig::quick_demo();
    let mut protocol = FlProtocol::new(config).expect("valid configuration");
    protocol.run().expect("honest majority commits");
    let params = protocol.contract().params().clone();
    let test_set = protocol.test_set().clone();
    let store = protocol.engine().store_of(0).expect("miner 0");

    // …and we, the auditor, replay it from genesis.
    println!("auditing {} blocks from genesis…\n", store.height());
    let report = replay_chain(store, params.clone(), test_set.clone()).expect("chain replays");
    for block in &report.blocks {
        println!(
            "  block {}: {} txs, committed root {}…, recomputed {}… — {}",
            block.height,
            block.txs,
            block.committed_root.short(),
            block.recomputed_root.short(),
            if block.consistent {
                "consistent"
            } else {
                "MISMATCH"
            }
        );
    }
    assert!(report.clean);
    println!("\nreconstructed contribution ledger (from transactions alone):");
    for (owner, value) in &report.final_contributions {
        println!("  owner {owner}: v = {value:+.4}");
    }

    // A light client verifies its own submission with headers + one proof.
    let mut light = HeaderChain::new();
    for h in 0..store.height() {
        light
            .accept(store.block_at(h).expect("present").header)
            .expect("headers link");
    }
    let round_block = store.block_at(1).expect("round block");
    let leaves: Vec<_> = round_block.txs.iter().map(Transaction::digest).collect();
    let tree = MerkleTree::build(&leaves);
    let my_tx_index = 2; // owner 2's masked update
    let proof = tree.prove(my_tx_index).expect("in range");
    let included = light.verify_inclusion(1, &round_block.txs[my_tx_index].digest(), &proof);
    println!(
        "\nlight client ({} headers, no block bodies): my update included? {included}",
        light.height()
    );
    assert!(included);

    // An auditor replaying with tampered parameters is caught.
    let mut wrong = params;
    wrong.permutation_seed ^= 0xbad;
    let tampered = replay_chain(store, wrong, test_set).expect("replays");
    println!(
        "replaying with a forged permutation seed: clean = {} (expected false)",
        tampered.clean
    );
    assert!(!tampered.clean);
}
