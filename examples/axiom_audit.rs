//! Audit that the contribution evaluation is well-founded: the Shapley
//! axioms the paper cites (Sect. II-A — balance, symmetry, zero elements,
//! additivity) hold on the actual FL utility, not just on textbook games.
//!
//! Builds a small federation, forms the FL-aggregation game over its
//! owners, computes exact SVs, and machine-checks each axiom.
//!
//! ```text
//! cargo run --release --example axiom_audit
//! ```

use fedchain::config::FlConfig;
use fedchain::ground_truth::AggregateUtility;
use fedchain::world::World;
use shapley::axioms::{check_efficiency, check_null_player, check_symmetry};
use shapley::coalition::Coalition;
use shapley::exact_shapley;
use shapley::monte_carlo::{monte_carlo_shapley, McConfig};
use shapley::utility::CoalitionUtility;

fn main() {
    let mut config = FlConfig::quick_demo();
    config.num_owners = 5;
    config.sigma = 2.0;
    let world = World::generate(&config).expect("valid configuration");
    let updates = world.local_updates(&config);
    let utility = AggregateUtility::new(
        &updates,
        &world.test,
        config.data.features,
        config.data.classes,
    );

    println!("game: 5 owners, FL-aggregation utility, σ = 2.0\n");
    let sv = exact_shapley(&utility);
    for (owner, value) in sv.iter().enumerate() {
        println!("  owner {owner}: v = {value:+.4}");
    }

    println!("\naxiom checks (exact SV):");
    println!(
        "  efficiency (Σv = u(N) − u(∅)) … {}",
        ok(check_efficiency(&utility, &sv))
    );
    println!(
        "  symmetry                      … {}",
        ok(check_symmetry(&utility, &sv))
    );
    println!(
        "  null player                   … {}",
        ok(check_null_player(&utility, &sv))
    );

    // Monte-Carlo cross-check: permutation sampling converges to the
    // exact values (the related-work baseline of Ghorbani & Zou).
    let mc = monte_carlo_shapley(
        &utility,
        &McConfig {
            permutations: 300,
            seed: 7,
            truncation_tolerance: None,
        },
    );
    let max_err = sv
        .iter()
        .zip(&mc.values)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nMonte-Carlo SV (300 permutations, {} utility evals): max |Δ| = {max_err:.4}",
        mc.utility_evaluations
    );

    let grand = utility.evaluate(Coalition::grand(5));
    let empty = utility.evaluate(Coalition::EMPTY);
    println!(
        "\nu(∅) = {empty:.4}, u(N) = {grand:.4}, Σv = {:.4}",
        sv.iter().sum::<f64>()
    );
}

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "VIOLATED"
    }
}
