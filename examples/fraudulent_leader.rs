//! The paper's threat model in action (Sect. III-A): "the selected data
//! owner (a.k.a leader) may be fraudulent, and he/she will try to
//! maximize his/her contribution by proposing incorrect evaluation
//! results. However, when the majority of miners are honest, only
//! truthful results are accepted by the blockchain."
//!
//! Runs the same federation twice — once all-honest, once with the first
//! leader corrupting its proposals — and shows that (a) the fraudulent
//! proposals are rejected by re-execution, and (b) the accepted
//! contributions are bit-for-bit identical to the honest run.
//!
//! ```text
//! cargo run --release --example fraudulent_leader
//! ```

use std::collections::BTreeMap;

use fedchain::config::FlConfig;
use fedchain::protocol::FlProtocol;
use fl_chain::consensus::engine::MinerBehavior;
use fl_chain::tx::AccountId;

fn main() {
    let config = FlConfig::quick_demo();

    println!("run 1: all miners honest");
    let honest = FlProtocol::new(config.clone())
        .expect("valid configuration")
        .run_and_report();

    println!("\nrun 2: owner 0 proposes corrupted evaluation results as leader");
    let behaviors: BTreeMap<AccountId, MinerBehavior> =
        [(0u32, MinerBehavior::CorruptProposals)].into();
    let mut protocol = FlProtocol::with_behaviors(config, &behaviors).expect("valid configuration");
    let fraud = protocol.run().expect("honest majority still commits");

    for commit in &fraud.commits {
        if commit.rejected_leaders.is_empty() {
            println!(
                "  block {}: leader {} accepted ({} of {} votes)",
                commit.height, commit.leader, commit.votes_for, commit.votes_total
            );
        } else {
            println!(
                "  block {}: leaders {:?} REJECTED by re-execution; leader {} accepted",
                commit.height, commit.rejected_leaders, commit.leader
            );
        }
    }

    println!("\nfraud attempts (failed views): {}", fraud.failed_views);
    assert!(
        fraud.failed_views > 0,
        "the fraudulent leader must be caught"
    );

    println!("\ncontribution ledger comparison:");
    println!("  honest run: {:?}", honest.per_owner_sv);
    println!("  fraud run:  {:?}", fraud.per_owner_sv);
    assert_eq!(
        honest.per_owner_sv, fraud.per_owner_sv,
        "fraud must not change the accepted evaluation"
    );
    println!("\nidentical — the fraudulent leader could not influence the ledger ✓");
}

/// Small extension trait so run 1 reads naturally above.
trait RunAndReport {
    fn run_and_report(self) -> fedchain::protocol::FlRunReport;
}

impl RunAndReport for FlProtocol {
    fn run_and_report(mut self) -> fedchain::protocol::FlRunReport {
        let report = self.run().expect("honest majority commits");
        println!(
            "  {} blocks committed, 0 fraud attempts, accuracy {:.4}",
            report.blocks, report.accuracy_history[0]
        );
        report
    }
}
