//! The privacy/resolution dial (paper Sect. IV-B).
//!
//! For each group count m, shows what a chain observer learns (anonymity
//! set sizes, distance between an owner's private update and the group
//! average that gets revealed) against the evaluation resolution gained
//! (distinct contribution levels).
//!
//! ```text
//! cargo run --release --example privacy_resolution
//! ```

use fedchain::config::FlConfig;
use fedchain::privacy::analyze_round;
use fedchain::world::World;
use fl_ml::dataset::SyntheticDigits;
use numeric::stats::mean;

fn main() {
    let mut config = FlConfig::paper_setting();
    config.sigma = 1.0;
    config.data = SyntheticDigits {
        instances: 2000,
        ..config.data
    };
    config.train.epochs = 10;

    let world = World::generate(&config).expect("valid configuration");
    let updates = world.local_updates(&config);
    let n = config.num_owners;

    println!("n = {n} owners; what does the chain reveal as m grows?\n");
    println!(
        "{:>3} | {:>13} | {:>15} | {:>17}",
        "m", "min anonymity", "mean leak dist", "resolution levels"
    );
    println!("{}", "-".repeat(60));
    for m in 1..=n {
        let report = analyze_round(&updates, m, config.permutation_seed, 0);
        println!(
            "{m:>3} | {:>13} | {:>15.4} | {:>17}",
            report.min_anonymity,
            mean(&report.per_owner_leak_distance),
            report.resolution_levels
        );
    }

    println!(
        "\nm = 1: one group — nobody's update is attributable (max privacy),\n\
         but every owner gets the same contribution score (no resolution).\n\
         m = n: every owner is its own group — full per-owner resolution,\n\
         but the revealed \"group average\" IS the owner's private model\n\
         (leak distance 0). The paper's (n/m)-anonymity trade-off, live."
    );
}
