//! Cheap, always-on assertions of the paper's qualitative claims — the
//! shapes that EXPERIMENTS.md records at full scale, pinned here at demo
//! scale so a regression cannot slip in silently.

use fedchain::adversary::AdversaryKind;
use fedchain::config::FlConfig;
use fedchain::contract_fl::AccuracyUtility;
use fedchain::ground_truth::AggregateUtility;
use fedchain::privacy::analyze_round;
use fedchain::protocol::FlProtocol;
use fedchain::world::World;
use numeric::stats::cosine_similarity;
use shapley::exact_shapley;
use shapley::group::{group_shapley, GroupSvConfig};

fn world_config(sigma: f64) -> FlConfig {
    let mut config = FlConfig::quick_demo();
    config.num_owners = 6;
    config.sigma = sigma;
    config.train.epochs = 15;
    config
}

/// Paper Sect. IV-B: "When m is the maximum, m = n, … their SVs are
/// evaluated independently based on their per round local model" — at
/// m = n GroupSV must reproduce the per-user SV over aggregated models.
#[test]
fn group_sv_at_m_equals_n_recovers_per_user_sv() {
    let config = world_config(2.0);
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);

    let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);
    let group = group_shapley(
        &updates,
        &utility,
        &GroupSvConfig {
            num_groups: config.num_owners,
            seed: 1,
            round: 0,
        },
    );

    let reference = AggregateUtility::new(
        &updates,
        &world.test,
        config.data.features,
        config.data.classes,
    );
    let native = exact_shapley(&reference);

    // Same multiset of values, matched per user: the grouping permutes
    // users into singleton groups, so per_user already re-indexes.
    let cos = cosine_similarity(&group.per_user, &native).expect("nonzero vectors");
    assert!(
        cos > 0.9999,
        "m=n GroupSV must equal per-user SV, cos={cos}"
    );
}

/// Paper Sect. V-B1: noisier owners contribute less. At demo scale we
/// assert the aggregate form: the noisiest owner scores below the mean of
/// the clean owners.
#[test]
fn noisy_owner_scores_below_clean_mean() {
    let config = world_config(6.0);
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);
    let utility = AggregateUtility::new(
        &updates,
        &world.test,
        config.data.features,
        config.data.classes,
    );
    let sv = exact_shapley(&utility);
    let noisiest = sv[config.num_owners - 1];
    let clean_mean: f64 = sv[..3].iter().sum::<f64>() / 3.0;
    assert!(
        noisiest < clean_mean,
        "noisiest owner {noisiest} must be below clean mean {clean_mean}: {sv:?}"
    );
}

/// Paper Sect. IV-B: privacy decreases (leakage increases) monotonically
/// with m, while resolution increases.
#[test]
fn privacy_leakage_monotone_in_m() {
    let config = world_config(1.0);
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);
    let n = config.num_owners;

    let mut last_leak = -1.0f64;
    for m in 1..=n {
        let report = analyze_round(&updates, m, 7, 0);
        let mean_leak: f64 = report.per_owner_leak_distance.iter().sum::<f64>()
            / report.per_owner_leak_distance.len() as f64;
        // Leak distance *shrinks* as m grows (closer to full reveal)…
        if last_leak >= 0.0 {
            assert!(
                mean_leak <= last_leak + 1e-9,
                "leak distance must shrink with m: m={m}, {mean_leak} > {last_leak}"
            );
        }
        last_leak = mean_leak;
        // …and resolution grows.
        assert_eq!(report.resolution_levels, m);
    }
    // At m = n the group average IS the private update.
    assert!(last_leak.abs() < 1e-9);
}

/// Paper Sect. VI (future work, our Ext B): at full resolution (m = n) a
/// model-poisoning adversary is priced at the bottom of the ledger.
#[test]
fn sign_flip_adversary_ranks_last_at_full_resolution() {
    let mut config = FlConfig::quick_demo();
    config.num_groups = config.num_owners; // m = n
    config.train.epochs = 15;
    let mut protocol = FlProtocol::new(config).expect("valid config");
    protocol.set_adversary(0, AdversaryKind::ScaledUpdate { factor: -1.0 });
    let report = protocol.run().expect("honest consensus");
    let sv = &report.per_owner_sv;
    let min = sv.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(
        sv[0], min,
        "sign-flip adversary must have the lowest SV: {sv:?}"
    );
    assert!(sv[0] < 0.0, "actively harmful update deserves negative SV");
}

/// The free-rider extension: submitting zeros scores below every honest
/// owner at m = n.
#[test]
fn free_rider_scores_at_bottom_at_full_resolution() {
    let mut config = FlConfig::quick_demo();
    config.num_groups = config.num_owners;
    config.train.epochs = 15;
    let mut protocol = FlProtocol::new(config).expect("valid config");
    protocol.set_adversary(1, AdversaryKind::FreeRider);
    let report = protocol.run().expect("honest consensus");
    let sv = &report.per_owner_sv;
    for (i, &v) in sv.iter().enumerate() {
        if i != 1 {
            assert!(
                sv[1] <= v,
                "free rider must not beat honest owner {i}: {sv:?}"
            );
        }
    }
}
