//! End-to-end integration tests spanning every crate: the paper's
//! protocol from dataset generation to on-chain contribution ledger.

use std::collections::BTreeMap;

use fedchain::config::FlConfig;
use fedchain::protocol::{FlProtocol, ProtocolError};
use fedchain::rewards::{allocate, NegativePolicy};
use fl_chain::consensus::engine::{EngineError, MinerBehavior};
use fl_chain::contract::SmartContract;
use fl_chain::gas::Gas;
use fl_chain::tx::AccountId;

fn quick() -> FlConfig {
    FlConfig::quick_demo()
}

#[test]
fn whole_pipeline_runs_and_is_auditable() {
    let mut protocol = FlProtocol::new(quick()).expect("valid config");
    let report = protocol.run().expect("honest run");

    // Chain: one key block + one round block, all replicas consistent.
    assert_eq!(report.blocks, 2);
    let engine = protocol.engine();
    let digests: Vec<_> = (0..4u32)
        .map(|id| engine.contract_of(id).expect("miner").state_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    for id in 0..4u32 {
        assert_eq!(engine.store_of(id).expect("miner").verify_chain(), Ok(()));
    }

    // Learning: the federated model beats random guessing decisively.
    assert!(report.accuracy_history[0] > 0.5);

    // Economics: rewards follow contributions.
    let payouts = allocate(100.0, &report.per_owner_sv, NegativePolicy::ClampZero);
    assert!((payouts.iter().sum::<f64>() - 100.0).abs() < 1e-6);
}

#[test]
fn sharded_cohort_run_spans_mempool_consensus_and_audit() {
    // 64 owners in 4 cohorts of 16, 2 secure-agg groups per cohort, an
    // 8-owner miner committee: the round streams 4 cohort blocks through
    // the mempool, every committee replica converges, and a full replay
    // audit verifies each per-cohort bundle's state root.
    let mut config = quick();
    config.num_owners = 64;
    config.num_groups = 2;
    config.num_cohorts = 4;
    config.miner_committee = 8;
    let mut protocol = FlProtocol::new(config).expect("valid config");
    let report = protocol.run().expect("honest run");

    // One key block + one block per cohort.
    assert_eq!(report.blocks, 5);
    assert_eq!(report.per_owner_sv.len(), 64);
    let record = &report.round_records[0];
    assert_eq!(record.cohorts.len(), 4);
    assert_eq!(record.groups.len(), 8);
    let mut members: Vec<usize> = record
        .cohorts
        .iter()
        .flat_map(|c| c.members.clone())
        .collect();
    members.sort_unstable();
    assert_eq!(members, (0..64).collect::<Vec<_>>());

    let engine = protocol.engine();
    assert_eq!(engine.miner_count(), 8);
    let digests: Vec<_> = (0..8u32)
        .map(|id| engine.contract_of(id).expect("miner").state_digest())
        .collect();
    assert!(digests.windows(2).all(|w| w[0] == w[1]));
    for id in 0..8u32 {
        assert_eq!(engine.store_of(id).expect("miner").verify_chain(), Ok(()));
    }

    let params = protocol.contract().params().clone();
    let audit = fedchain::audit::replay_chain(
        engine.store_of(0).expect("miner"),
        params,
        protocol.test_set().clone(),
    )
    .expect("replay");
    assert!(audit.clean, "per-cohort bundles must replay exactly");
}

#[test]
fn masked_updates_on_chain_never_equal_plaintext_encodings() {
    // Privacy audit: walk the committed blocks and check that no
    // submitted masked vector could be trivially decoded into a weight
    // vector of plausible magnitude. A plaintext fixed-point encoding of
    // logistic-regression weights decodes to values in (say) ±100; a
    // masked vector decodes to ring-uniform garbage.
    use fedchain::contract_fl::FlCall;
    use numeric::FixedCodec;

    let mut config = quick();
    config.num_groups = 1; // one group of 4: everyone is pairwise masked
    let mut protocol = FlProtocol::new(config.clone()).expect("valid config");
    protocol.run().expect("honest run");

    let engine = protocol.engine();
    let store = engine.store_of(0).expect("miner");
    let codec = FixedCodec::new(config.frac_bits);
    let mut masked_seen = 0;
    for height in 0..store.height() {
        let block = store.block_at(height).expect("height valid");
        for tx in &block.txs {
            if let FlCall::SubmitMaskedUpdate { masked, .. } = &tx.call {
                masked_seen += 1;
                let decoded = codec.decode_vec(masked);
                let wild = decoded.iter().filter(|v| v.abs() > 1e6).count();
                assert!(
                    wild * 2 > decoded.len(),
                    "a masked update decoded to mostly-plausible weights — mask missing?"
                );
            }
        }
    }
    assert_eq!(masked_seen, 4, "all four masked updates are on-chain");
}

#[test]
fn on_chain_group_sv_matches_off_chain_algorithm_1() {
    // The contract's evaluation must equal the off-chain reference
    // implementation of Algorithm 1 run over the same local updates.
    use fedchain::contract_fl::AccuracyUtility;
    use fedchain::world::World;
    use shapley::group::{group_shapley, GroupSvConfig};

    let config = quick();
    let mut protocol = FlProtocol::new(config.clone()).expect("valid config");
    let report = protocol.run().expect("honest run");

    // Rebuild the same world off-chain and train the same local updates.
    let world = World::generate(&config).expect("valid config");
    let updates = world.local_updates(&config);
    let utility = AccuracyUtility::new(&world.test, config.data.features, config.data.classes);
    let off_chain = group_shapley(
        &updates,
        &utility,
        &GroupSvConfig {
            num_groups: config.num_groups,
            seed: config.permutation_seed,
            round: 0,
        },
    );

    let on_chain = &report.round_records[0];
    assert_eq!(on_chain.per_owner_sv.len(), off_chain.per_user.len());
    for (chain, reference) in on_chain.per_owner_sv.iter().zip(&off_chain.per_user) {
        assert!(
            (chain - reference).abs() < 1e-6,
            "on-chain {chain} vs off-chain {reference} — fixed-point noise only"
        );
    }
}

#[test]
fn single_fraudulent_leader_cannot_alter_the_ledger() {
    let honest = {
        let mut p = FlProtocol::new(quick()).expect("valid config");
        p.run().expect("honest run")
    };
    let behaviors: BTreeMap<AccountId, MinerBehavior> =
        [(0u32, MinerBehavior::CorruptProposals)].into();
    let mut p = FlProtocol::with_behaviors(quick(), &behaviors).expect("valid config");
    let fraud = p.run().expect("honest majority commits");

    assert!(fraud.failed_views > 0);
    assert_eq!(honest.per_owner_sv, fraud.per_owner_sv);
    assert_eq!(honest.accuracy_history, fraud.accuracy_history);
}

#[test]
fn byzantine_majority_blocks_progress() {
    let behaviors: BTreeMap<AccountId, MinerBehavior> = [
        (1u32, MinerBehavior::RejectAll),
        (2u32, MinerBehavior::RejectAll),
        (3u32, MinerBehavior::RejectAll),
    ]
    .into();
    let mut p = FlProtocol::with_behaviors(quick(), &behaviors).expect("valid config");
    match p.run() {
        Err(ProtocolError::Consensus(EngineError::NoQuorum { .. })) => {}
        other => panic!("expected NoQuorum, got {other:?}"),
    }
}

#[test]
fn gas_grows_with_cohort_size() {
    let gas_for = |owners: usize| -> Gas {
        let mut config = quick();
        config.num_owners = owners;
        config.num_groups = 2;
        let mut p = FlProtocol::new(config).expect("valid config");
        p.run().expect("honest run").total_gas
    };
    let small = gas_for(3);
    let large = gas_for(6);
    assert!(
        large > small,
        "more owners must burn more gas: {small} vs {large}"
    );
}

#[test]
fn multi_round_ledger_is_sum_of_round_records() {
    let mut config = quick();
    config.rounds = 3;
    let mut p = FlProtocol::new(config).expect("valid config");
    let report = p.run().expect("honest run");
    assert_eq!(report.round_records.len(), 3);
    for (owner, &total) in report.per_owner_sv.iter().enumerate() {
        let per_round: f64 = report
            .round_records
            .iter()
            .map(|r| r.per_owner_sv[owner])
            .sum();
        assert!((total - per_round).abs() < 1e-12);
    }
}

#[test]
fn determinism_across_full_stack() {
    // Two completely independent protocol instances must agree on every
    // observable: SVs, accuracies, chain digests. This is invariant 4 of
    // DESIGN.md — without it, verification by re-execution cannot work.
    let run = || {
        let mut p = FlProtocol::new(quick()).expect("valid config");
        let report = p.run().expect("honest run");
        let tip = p.engine().store_of(0).expect("miner").tip_digest();
        (report.per_owner_sv, report.accuracy_history, tip)
    };
    let (sv1, acc1, tip1) = run();
    let (sv2, acc2, tip2) = run();
    assert_eq!(sv1, sv2);
    assert_eq!(acc1, acc2);
    assert_eq!(tip1, tip2);
}
