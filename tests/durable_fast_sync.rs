//! Durability end-to-end: a full FL run — dropout lifecycle included —
//! persisted to a write-ahead log on disk, then certified entirely from
//! the cold bytes by `fedchain::audit::fast_sync`. The on-disk chain
//! must reproduce the live chain's tip digest exactly, from genesis and
//! from a verified snapshot alike.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fedchain::audit::{fast_sync, FastSyncError};
use fedchain::config::FlConfig;
use fedchain::protocol::FlProtocol;
use fl_chain::durability::DurabilityConfig;
use fl_chain::log::LogConfig;

struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("transparent-fl-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create test dir");
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// quick_demo with a dropout in round 0: setup block + survivor block +
/// recovery block = 3 blocks, exercising the full dropout lifecycle.
fn dropout_config() -> FlConfig {
    let mut config = FlConfig::quick_demo();
    config.dropout_schedule = vec![(0, vec![1])];
    config
}

/// Small segments so the 3-block chain spans several; snapshots at every
/// block when `snapshot_every` is 1.
fn durability_config(snapshot_every: u64) -> DurabilityConfig {
    DurabilityConfig {
        log: LogConfig {
            segment_bytes: 16 * 1024,
        },
        snapshot_every,
    }
}

#[test]
fn dropout_run_fast_syncs_from_cold_disk_to_identical_tip() {
    let dir = TestDir::new("genesis-sync");
    let mut protocol = FlProtocol::new(dropout_config()).expect("valid config");
    // No snapshot cadence: this sync must replay from genesis.
    protocol
        .persist_to(dir.path(), durability_config(u64::MAX))
        .expect("fresh dir attaches");
    protocol.run().expect("honest run");

    let live_store = protocol.engine().store_of(0).expect("miner 0");
    let live_tip = live_store.tip_digest();
    let params = protocol.contract().params().clone();
    let test_set = protocol.test_set().clone();
    drop(protocol); // everything below runs from cold bytes only

    let report = fast_sync(dir.path(), params, test_set).expect("cold chain certifies");
    assert_eq!(report.synced_from, 0, "no snapshot: genesis replay");
    assert_eq!(report.blocks, 3, "setup + survivor + recovery blocks");
    assert!(report.truncated.is_none());
    assert!(
        report.audit.clean,
        "every state root must verify: {:#?}",
        report.audit.blocks
    );
    assert_eq!(
        report.tip_digest, live_tip,
        "the on-disk chain is bit-identical to the live chain"
    );
}

/// 8 owners in 2 cohorts: the sharded round streams one block per
/// cohort through the mempool instead of one mega-block.
fn sharded_config() -> FlConfig {
    let mut config = FlConfig::quick_demo();
    config.num_owners = 8;
    config.num_groups = 2;
    config.num_cohorts = 2;
    config
}

#[test]
fn sharded_run_fast_syncs_from_cold_disk_to_identical_tip() {
    let dir = TestDir::new("cohort-sync");
    let mut protocol = FlProtocol::new(sharded_config()).expect("valid config");
    protocol
        .persist_to(dir.path(), durability_config(u64::MAX))
        .expect("fresh dir attaches");
    protocol.run().expect("honest run");

    let live_tip = protocol.engine().store_of(0).expect("miner 0").tip_digest();
    let params = protocol.contract().params().clone();
    let test_set = protocol.test_set().clone();
    drop(protocol); // everything below runs from cold bytes only

    let report = fast_sync(dir.path(), params, test_set).expect("cold sharded chain certifies");
    assert_eq!(report.blocks, 3, "setup + one block per cohort");
    assert!(
        report.audit.clean,
        "per-cohort evidence must replay exactly: {:#?}",
        report.audit.blocks
    );
    assert_eq!(
        report.tip_digest, live_tip,
        "the on-disk sharded chain is bit-identical to the live chain"
    );
}

#[test]
fn fast_sync_from_snapshot_verifies_and_matches_genesis_replay() {
    let dir = TestDir::new("snap-sync");
    let mut protocol = FlProtocol::new(dropout_config()).expect("valid config");
    // Snapshot after every block: the newest covers all but none or few
    // trailing blocks, so the sync is a true snapshot-then-verify.
    protocol
        .persist_to(dir.path(), durability_config(1))
        .expect("fresh dir attaches");
    protocol.run().expect("honest run");

    let live_tip = protocol.engine().store_of(0).expect("miner 0").tip_digest();
    let params = protocol.contract().params().clone();
    let test_set = protocol.test_set().clone();
    let live_contributions: Vec<(u32, f64)> = protocol
        .contract()
        .contributions()
        .iter()
        .map(|(&id, &v)| (id, v))
        .collect();
    drop(protocol);

    let report =
        fast_sync(dir.path(), params.clone(), test_set.clone()).expect("snapshot sync certifies");
    assert!(
        report.synced_from > 0,
        "a snapshot must have anchored the sync"
    );
    assert!(report.audit.clean);
    assert_eq!(report.tip_digest, live_tip);
    // The snapshot path reconstructs the exact same final ledger a
    // genesis replay (and the live contract) holds.
    assert_eq!(report.audit.final_contributions, live_contributions);
}

#[test]
fn fast_sync_rejects_a_forged_snapshot_state() {
    // A CRC-valid, tip-bound snapshot whose *state* was forged must be
    // caught by the digest proof against the committed state root.
    let dir = TestDir::new("forged-snap");
    let mut protocol = FlProtocol::new(dropout_config()).expect("valid config");
    protocol
        .persist_to(dir.path(), durability_config(u64::MAX))
        .expect("fresh dir attaches");
    protocol.run().expect("honest run");
    let params = protocol.contract().params().clone();
    let test_set = protocol.test_set().clone();

    // Forge: a snapshot of the *genesis* state claiming the tip height.
    // write_snapshot frames and binds it correctly — only the state blob
    // lies — so every durability-layer check passes.
    let genesis_state =
        fedchain::FlContract::genesis(params.clone(), test_set.clone()).snapshot_state();
    let (mut durable, _) = fl_chain::durability::DurableStore::<fedchain::FlCall>::open(
        dir.path(),
        durability_config(u64::MAX),
    )
    .expect("reopen");
    durable
        .write_snapshot(&genesis_state)
        .expect("forged snapshot writes");
    drop(durable);

    match fast_sync(dir.path(), params, test_set) {
        Err(FastSyncError::SnapshotStateMismatch { height: 3, .. }) => {}
        other => panic!("forged snapshot must be rejected, got {other:?}"),
    }
}

#[test]
fn fast_sync_survives_a_torn_tail_and_recertifies_the_prefix() {
    // Simulate a crash mid-write of the final block record, then certify
    // what remains: the clean prefix must still audit end-to-end.
    let dir = TestDir::new("torn-sync");
    let mut protocol = FlProtocol::new(dropout_config()).expect("valid config");
    protocol
        .persist_to(dir.path(), durability_config(u64::MAX))
        .expect("fresh dir attaches");
    protocol.run().expect("honest run");
    let params = protocol.contract().params().clone();
    let test_set = protocol.test_set().clone();
    drop(protocol);

    // Tear the tail: chop bytes off the final segment file.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir.path())
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segments.sort();
    let last = segments.last().expect("segments exist");
    let bytes = std::fs::read(last).expect("read segment");
    std::fs::write(last, &bytes[..bytes.len() - 7]).expect("tear tail");

    let report = fast_sync(dir.path(), params, test_set).expect("prefix certifies");
    assert!(report.truncated.is_some(), "the torn tail must be reported");
    assert_eq!(report.blocks, 2, "final record lost, prefix recovered");
    assert!(report.audit.clean, "the surviving prefix still verifies");
}
