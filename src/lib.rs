//! Umbrella crate for the transparent-fl workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! integration tests can depend on a single package.

pub use fedchain;
pub use fl_chain as chain;
pub use fl_crypto as crypto;
pub use fl_ml as ml;
pub use numeric;
pub use shapley;
